"""Command-line interface: the artifact's daemon scripts, collapsed.

The released CAPES artifact drives its daemons with shell scripts
(``intfdaemon_service.sh conf.py start``, ``dqldaemon_service.sh``,
``ma_service.sh``); in the simulated reproduction there is one process,
so the equivalent surface is a single CLI over a conf.py:

    python -m repro.cli train    --config conf.py --ticks 1500 \
                                 --checkpoint model.npz
    python -m repro.cli evaluate --config conf.py --ticks 300 \
                                 --checkpoint model.npz
    python -m repro.cli baseline --config conf.py --ticks 300
    python -m repro.cli collect  --config conf.py --ticks 600 \
                                 --n-envs 4 --vector-backend fork \
                                 --out replay.sqlite
    python -m repro.cli shard-host --config conf.py --n-envs 2 \
                                 --bind 127.0.0.1:7100
    python -m repro.cli collect  --config conf.py --ticks 600 --n-envs 4 \
                                 --shard 127.0.0.1:7100 \
                                 --shard 127.0.0.1:7101
    python -m repro.cli sweep    --config conf.py \
                                 --tuners capes,random --seeds 0-4 --jobs 4
    python -m repro.cli sweep    --config conf.py --env sim-lustre \
                                 --n-envs 4 --vector-backend fork
    python -m repro.cli sweep    --config conf.py \
                                 --scenario sim-lustre-bursty --seeds 0-4
    python -m repro.cli window-sweep --config conf.py --window 1,2,4,8,16
    python -m repro.cli serve    --config conf.py --port 7007 \
                                 --stats-port 7008 --out replay.sqlite

``train`` runs an online training session and saves the model;
``evaluate`` reloads it and measures tuned throughput; ``baseline``
measures the untouched system; ``collect`` is §3.3's "solely
monitoring" mode — N clusters advance in chunks (one worker round-trip
per chunk, replay records batched into the reply) and every NULL-action
transition fans into one replay DB, durable when ``--out`` names a
file, for later offline training — and with ``--train`` the decoupled
DRL engine (:mod:`repro.train`) trains against the fan-in stream while
collection runs (``--trainer-backend serial|process``, ``--train-ratio``,
``--sync-every``, ``--checkpoint``); ``shard-host`` hosts a fraction
of a sharded collection fleet over TCP (``collect --shard HOST:PORT``,
repeatable, drives the same worker protocol the fork backend speaks
over pipes — trajectories are byte-identical to local backends
regardless of placement); ``sweep`` fans a multi-tuner,
multi-seed experiment grid out through
:class:`~repro.exp.runner.ExperimentRunner` — ``--env`` names any
registered environment backend, ``--n-envs N`` trains each CAPES
run against N lockstep clusters fanning experience into one shared
replay DB, and ``--scenario NAME`` (when NAME is registered in
:mod:`repro.scenarios`) runs every session against that fault/
perturbation timeline; ``window-sweep`` does a static parameter sweep (the
tweak-benchmark loop CAPES replaces, useful for ground truth); ``serve``
runs the :mod:`repro.serve` control-plane daemon — remote clusters
register over TCP, stream §3.3 differential telemetry, and receive
tuning decisions and versioned checkpoint hot-swaps, with the trainer
knobs following the same flag > conf > default resolution as
``collect`` (SIGINT/SIGTERM shuts down gracefully and exits 0).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import List, Optional

import numpy as np

from repro.core.capes import CAPES
from repro.core.config import load_config
from repro.exp import ExperimentRunner, ExperimentSpec, RunBudget, grid, tuner_names
from repro.stats import analyze

#: ThroughputObjective unit is 100 MB/s.
MBPS_PER_UNIT = 100.0


def _build(args: argparse.Namespace) -> CAPES:
    return CAPES(load_config(args.config))


def _summarize(label: str, rewards: np.ndarray) -> None:
    s = analyze(rewards, trim=False)
    print(
        f"{label}: {s.mean * MBPS_PER_UNIT:.1f} "
        f"± {s.ci_halfwidth * MBPS_PER_UNIT:.1f} MB/s "
        f"(n={s.n_effective}, 95% CI)"
    )


def cmd_train(args: argparse.Namespace) -> int:
    capes = _build(args)
    print(f"training for {args.ticks} ticks...")
    result = capes.train(args.ticks)
    _summarize("throughput during training", result.rewards)
    if len(result.losses):
        print(
            f"prediction error: first {result.losses[0]:.5f} -> "
            f"last-100 mean {np.mean(result.losses[-100:]):.5f}"
        )
    print(f"final parameters: {result.final_params}")
    if args.checkpoint:
        capes.save(args.checkpoint)
        print(f"model saved to {args.checkpoint}")
    return 0


def cmd_evaluate(args: argparse.Namespace) -> int:
    capes = _build(args)
    capes.session.ensure_started()
    if args.checkpoint:
        capes.load(args.checkpoint)
        print(f"model loaded from {args.checkpoint}")
    result = capes.evaluate(args.ticks)
    _summarize("tuned throughput", result.rewards)
    print(f"final parameters: {result.final_params}")
    return 0


def cmd_baseline(args: argparse.Namespace) -> int:
    capes = _build(args)
    rewards = capes.measure_baseline(args.ticks)
    _summarize("baseline throughput", rewards)
    return 0


def cmd_collect(args: argparse.Namespace) -> int:
    """Monitoring-only chunked collection into one shared replay DB,
    optionally with the decoupled trainer running against it."""
    from repro.env import VectorEnv

    if args.n_envs < 1:
        print(f"--n-envs must be >= 1, got {args.n_envs}", file=sys.stderr)
        return 2
    if args.shard and args.vector_backend not in ("serial", "shards"):
        # serial is the argparse default: a bare --shard implies shards.
        print(
            f"--shard conflicts with --vector-backend "
            f"{args.vector_backend}; sharded collection is "
            f"--vector-backend shards",
            file=sys.stderr,
        )
        return 2
    if args.shard:
        args.vector_backend = "shards"
    if args.vector_backend == "shards" and not args.shard:
        print(
            "--vector-backend shards needs at least one --shard HOST:PORT "
            "(start them with `repro shard-host`)",
            file=sys.stderr,
        )
        return 2
    if args.ticks < 1:
        print(f"--ticks must be >= 1, got {args.ticks}", file=sys.stderr)
        return 2
    if args.chunk is not None and args.chunk < 1:
        print(f"--chunk must be >= 1, got {args.chunk}", file=sys.stderr)
        return 2
    if args.out and os.path.exists(args.out):
        # A fresh fleet fences (clears) its shared DB on reset;
        # collecting "into" an existing store would destroy it.
        print(
            f"refusing to overwrite existing replay DB {args.out!r}; "
            f"each collection session is one fresh store — pick a new "
            f"path or remove the old file first",
            file=sys.stderr,
        )
        return 2
    if not args.train:
        for flag in ("checkpoint", "train_ratio", "sync_every", "trainer_backend"):
            if getattr(args, flag) is not None:
                print(
                    f"--{flag.replace('_', '-')} needs --train",
                    file=sys.stderr,
                )
                return 2
    if args.snapshot_every is not None and args.snapshot_every < 1:
        print(
            f"--snapshot-every must be >= 1, got {args.snapshot_every}",
            file=sys.stderr,
        )
        return 2
    if args.snapshot_every is not None and not args.snapshot_dir:
        print("--snapshot-every needs --snapshot-dir", file=sys.stderr)
        return 2
    from repro.replaydb import CACHE_ONLY

    config = load_config(args.config)
    vec_kwargs = {}
    if args.vector_backend == "shards":
        # The shard hosts build the envs from their own --config; the
        # master derives the global seeds from this conf's seed and
        # validates --n-envs against what the shards actually host.
        vec_kwargs["shards"] = list(args.shard)
    try:
        venv = VectorEnv.from_config(
            config.env,
            args.n_envs,
            backend=args.vector_backend,
            # No --out: still fan in, just without a durable layer
            # (useful as a throughput smoke and for in-process offline
            # training).
            shared_db_path=args.out if args.out else CACHE_ONLY,
            **vec_kwargs,
        )
    except (ConnectionError, ValueError) as exc:
        if args.vector_backend != "shards":
            raise
        print(f"cannot attach to shards: {exc}", file=sys.stderr)
        return 2
    try:
        stats = None
        agent = None
        trainer_config = None
        sampler_seed = None
        if args.train:
            # §3.3 monitoring + the continuously running DRL engine:
            # collect in chunks while training against the fan-in DB.
            from repro.rl import DQNAgent
            from repro.train import TrainerConfig
            from repro.util.rng import derive_rng, ensure_rng

            root = ensure_rng(config.seed)
            agent = DQNAgent(
                obs_dim=venv.obs_dim,
                n_actions=venv.n_actions,
                hp=venv.hp,
                loss=config.loss,
                rng=derive_rng(root, "agent"),
            )
            # Flag > conf > default, for every trainer knob.  The conf
            # may name the inline backend (it is the session default);
            # collection has no tick loop to train inside, so that
            # resolves to serial interleaving here.
            backend = args.trainer_backend or config.trainer_backend
            if backend == "inline":
                backend = "serial"
            ratio = (
                args.train_ratio
                if args.train_ratio is not None
                else config.train_ratio
            )
            trainer_config = TrainerConfig(
                backend=backend,
                train_ratio=(
                    float(ratio)
                    if ratio is not None
                    else float(config.train_steps_per_tick)
                ),
                sync_every=(
                    args.sync_every
                    if args.sync_every is not None
                    else config.sync_every
                ),
            )
            sampler_seed = int(derive_rng(root, "sampler").integers(2**31))
        if args.snapshot_dir:
            # Snapshot-aware session: same cadence as train_collect,
            # plus boundary artifacts and the chained rollout digest.
            from repro.snapshot import run_collect_session

            outcome = run_collect_session(
                venv,
                args.ticks,
                chunk=args.chunk,
                agent=agent,
                trainer_config=trainer_config,
                sampler_seed=sampler_seed,
                snapshot_every=args.snapshot_every or args.ticks,
                snapshot_dir=args.snapshot_dir,
                session_extra=_session_extra(args, trainer_config),
            )
            rewards, stats = outcome.rewards, outcome.trainer_stats
        elif args.train:
            from repro.train import train_collect

            rewards, stats = train_collect(
                venv,
                agent,
                trainer_config,
                args.ticks,
                chunk=args.chunk,
                sampler_seed=sampler_seed,
            )
        else:
            venv.reset()
            rewards = venv.collect(args.ticks, chunk=args.chunk)
        venv.commit_replay()
        _summarize(
            f"monitored throughput ({args.n_envs} cluster(s), "
            f"{args.ticks} ticks)",
            rewards.mean(axis=0),
        )
        if stats is not None:
            losses = np.asarray(stats.losses)
            summary = (
                f"first {losses[0]:.5f} -> last-100 mean "
                f"{np.mean(losses[-100:]):.5f}"
                if len(losses)
                else "replay too sparse, no minibatch completed"
            )
            print(
                f"trained {stats.steps_attempted} SGD steps "
                f"({stats.backend} backend, "
                f"{stats.broadcasts_applied} weight broadcasts); "
                f"prediction error: {summary}"
            )
            if args.checkpoint:
                from repro.nn.checkpoint import save_checkpoint

                save_checkpoint(
                    args.checkpoint,
                    agent.online.net,
                    optimizer=agent.optimizer,
                    extra={"train_steps": agent.train_steps},
                )
                print(f"model saved to {args.checkpoint}")
        if args.snapshot_dir:
            print(f"rollout digest: {outcome.digest.hexdigest}")
            print(
                f"{len(outcome.snapshots)} snapshot(s) -> {args.snapshot_dir}"
            )
        stored = len(venv.shared_db)
        if args.out:
            print(
                f"{stored} records -> {args.out} "
                f"({venv.shared_db.record_count()} durable rows, "
                f"{venv.shared_db.on_disk_bytes()} bytes)"
            )
        else:
            print(f"{stored} records collected (cache-only, not persisted)")
    finally:
        venv.close()
    return 0


def _session_extra(args: argparse.Namespace, trainer_config) -> dict:
    """What ``repro resume`` needs to rebuild this session's objects.

    Stored in the snapshot's session section so the resume command
    cannot be invoked with mismatched geometry or trainer knobs —
    everything but the conf path (still given on the command line, like
    every other subcommand) rides inside the artifact.
    """
    extra = {
        "chunk": args.chunk,
        "n_envs": int(args.n_envs),
        "vector_backend": args.vector_backend,
        "shards": list(args.shard) if getattr(args, "shard", None) else None,
        "trainer": None,
    }
    if trainer_config is not None:
        extra["trainer"] = {
            "backend": trainer_config.backend,
            "train_ratio": float(trainer_config.train_ratio),
            "sync_every": int(trainer_config.sync_every),
        }
    return extra


def cmd_resume(args: argparse.Namespace) -> int:
    """Continue a snapshotted collection session byte-identically."""
    from repro.env import VectorEnv
    from repro.replaydb import CACHE_ONLY
    from repro.snapshot import SessionSnapshot, run_collect_session

    if not os.path.exists(args.snapshot):
        print(f"no such snapshot: {args.snapshot}", file=sys.stderr)
        return 2
    if args.snapshot_every is not None and not args.snapshot_dir:
        print("--snapshot-every needs --snapshot-dir", file=sys.stderr)
        return 2
    if args.out and os.path.exists(args.out):
        print(
            f"refusing to overwrite existing replay DB {args.out!r}; "
            f"a resumed session rebuilds its store from the snapshot — "
            f"pick a new path or remove the old file first",
            file=sys.stderr,
        )
        return 2
    snap = SessionSnapshot.load(args.snapshot)
    session = snap.section("session")
    total = args.ticks if args.ticks is not None else session["total_ticks"]
    if total < session["done_ticks"]:
        print(
            f"--ticks {total} is before the snapshot's tick "
            f"{session['done_ticks']}; use `repro replay` for time travel",
            file=sys.stderr,
        )
        return 2
    config = load_config(args.config)
    vec_kwargs = {}
    if session["backend"] == "shards":
        # Default to the addresses the session recorded; --shard
        # overrides for a moved or re-laid-out fleet (any layout with
        # the same env total resumes byte-identically — placement
        # independence).
        shards = list(args.shard) if args.shard else session.get("shards")
        if not shards:
            print(
                "session used sharded collection but recorded no shard "
                "addresses; pass --shard HOST:PORT for each running "
                "shard host",
                file=sys.stderr,
            )
            return 2
        vec_kwargs["shards"] = shards
    try:
        venv = VectorEnv.from_config(
            config.env,
            int(session["n_envs"]),
            backend=session["backend"],
            shared_db_path=args.out if args.out else CACHE_ONLY,
            tick_stride=int(session["tick_stride"]),
            **vec_kwargs,
        )
    except (ConnectionError, ValueError) as exc:
        if session["backend"] != "shards":
            raise
        print(f"cannot attach to shards: {exc}", file=sys.stderr)
        return 2
    try:
        agent = None
        trainer_config = None
        if session["has_trainer"]:
            from repro.rl import DQNAgent
            from repro.train import TrainerConfig
            from repro.util.rng import derive_rng, ensure_rng

            root = ensure_rng(config.seed)
            agent = DQNAgent(
                obs_dim=venv.obs_dim,
                n_actions=venv.n_actions,
                hp=venv.hp,
                loss=config.loss,
                rng=derive_rng(root, "agent"),
            )
            knobs = session["trainer"]
            trainer_config = TrainerConfig(
                backend=knobs["backend"],
                train_ratio=float(knobs["train_ratio"]),
                sync_every=int(knobs["sync_every"]),
            )
        print(
            f"resuming from tick {session['done_ticks']} of {total} "
            f"({session['backend']} backend, {session['n_envs']} cluster(s))"
        )
        outcome = run_collect_session(
            venv,
            total,
            chunk=session.get("chunk"),
            agent=agent,
            trainer_config=trainer_config,
            snapshot_every=args.snapshot_every,
            snapshot_dir=args.snapshot_dir,
            resume_from=snap,
            session_extra={
                k: session.get(k)
                for k in (
                    "chunk",
                    "n_envs",
                    "vector_backend",
                    "shards",
                    "trainer",
                )
            },
        )
        venv.commit_replay()
        if outcome.rewards.shape[1]:
            _summarize(
                f"resumed throughput (ticks "
                f"{outcome.start_tick}..{outcome.total_ticks})",
                outcome.rewards.mean(axis=0),
            )
        if outcome.trainer_stats is not None:
            stats = outcome.trainer_stats
            print(
                f"trained {stats.steps_attempted} SGD steps total "
                f"({stats.backend} backend, epoch {stats.epoch})"
            )
        print(f"rollout digest: {outcome.digest.hexdigest}")
        if outcome.snapshots:
            print(
                f"{len(outcome.snapshots)} snapshot(s) -> "
                f"{args.snapshot_dir}"
            )
    finally:
        venv.close()
    return 0


def cmd_replay(args: argparse.Namespace) -> int:
    """Time-travel: restore the nearest snapshot at or before ``--at``
    and step forward deterministically to the target tick."""
    from repro.env import VectorEnv
    from repro.replaydb import CACHE_ONLY
    from repro.snapshot import RolloutDigest, SessionSnapshot

    if args.at < 0:
        print(f"--at must be >= 0, got {args.at}", file=sys.stderr)
        return 2
    candidates = sorted(Path(args.snapshot_dir).glob("snapshot-*.npz"))
    if not candidates:
        print(
            f"no snapshot-*.npz artifacts in {args.snapshot_dir}",
            file=sys.stderr,
        )
        return 2
    best = None
    best_session = None
    for path in candidates:
        snap = SessionSnapshot.load(path)
        done = snap.section("session")["done_ticks"]
        if done <= args.at and (best is None or done > best_session["done_ticks"]):
            best, best_session = snap, snap.section("session")
    if best is None:
        earliest = SessionSnapshot.load(candidates[0]).section("session")
        print(
            f"no snapshot at or before tick {args.at} (earliest is "
            f"{earliest['done_ticks']})",
            file=sys.stderr,
        )
        return 2
    config = load_config(args.config)
    # Time travel is placement-independent: a sharded session's
    # trajectory replays identically on local serial workers, with no
    # shard hosts required.
    backend = best_session["backend"]
    if backend == "shards":
        backend = "serial"
    venv = VectorEnv.from_config(
        config.env,
        int(best_session["n_envs"]),
        backend=backend,
        shared_db_path=CACHE_ONLY,
        tick_stride=int(best_session["tick_stride"]),
    )
    try:
        # Env-only restore: collection is NULL-action monitoring, so
        # the trajectory to the target tick never consults the policy —
        # time travel does not need the trainer rebuilt.
        venv.restore(
            {"meta": best.section("env"), "arrays": best.section_arrays("env")}
        )
        digest = RolloutDigest(best_session["digest"])
        start = int(best_session["done_ticks"])
        print(f"restored snapshot at tick {start}")
        if args.at > start:
            block = venv.collect(args.at - start)
            digest.update(block)
            print(f"stepped forward {args.at - start} tick(s) to {args.at}")
        print(f"rollout digest at tick {args.at}: {digest.hexdigest}")
        for i in range(venv.n_envs):
            params = venv.env_method(i, "current_params")
            print(f"cluster {i}: params={params}")
    finally:
        venv.close()
    return 0


def cmd_shard_host(args: argparse.Namespace) -> int:
    """Host one fraction of a sharded collection fleet over TCP.

    Builds its environments at attach time from the master-assigned
    global seeds (placement never perturbs a trajectory); everything
    else about the env comes from this host's own ``--config`` or
    ``--env``, which must match the master's conf.
    """
    from repro.env.shard import ShardHost
    from repro.transport import parse_address

    if (args.config is None) == (args.env is None):
        print(
            "shard-host needs exactly one of --config (sim-lustre conf) "
            "or --env (registry name)",
            file=sys.stderr,
        )
        return 2
    if args.n_envs < 1:
        print(f"--n-envs must be >= 1, got {args.n_envs}", file=sys.stderr)
        return 2
    try:
        host, port = parse_address(args.bind)
    except ValueError as exc:
        print(f"bad --bind value: {exc}", file=sys.stderr)
        return 2
    if args.config is not None:
        from dataclasses import replace

        from repro.env import StorageTuningEnv
        from repro.replaydb import CACHE_ONLY

        env_config = load_config(args.config).env

        def builder(seed: int):
            # Mirror VectorEnv.from_config's per-env construction
            # exactly: same config, derived seed, cache-only staging
            # store (the master's shared DB is the durable layer).
            return StorageTuningEnv(
                replace(env_config, seed=seed, db_path=CACHE_ONLY)
            )

    else:
        from repro.env import env_names, make_env

        if args.env not in env_names():
            print(
                f"unknown environment {args.env!r}; registered: "
                f"{env_names()}",
                file=sys.stderr,
            )
            return 2

        def builder(seed: int):
            return make_env(args.env, seed=seed)

    try:
        shard = ShardHost(builder, args.n_envs, host=host, port=port)
    except OSError as exc:
        print(f"cannot bind {args.bind}: {exc}", file=sys.stderr)
        return 2
    # Flush immediately: launchers (tests, the shard-bench job) read
    # the resolved ephemeral port from this line.
    print(
        f"shard-host listening on {shard.address} "
        f"({args.n_envs} env(s))",
        flush=True,
    )
    try:
        shard.serve_forever(once=args.once)
    except KeyboardInterrupt:  # pragma: no cover - interactive stop
        pass
    finally:
        shard.close()
    return 0


def _parse_seeds(text: str) -> List[int]:
    """Comma-separated seeds; ``A-B`` items are inclusive ranges.

    ``"42"`` is exactly seed 42, ``"0-4"`` is seeds 0..4, and
    ``"0-2,7"`` mixes both.
    """
    seeds: List[int] = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        lo, sep, hi = part.partition("-")
        if sep and lo:
            low, high = int(lo), int(hi)
            if high < low:
                raise ValueError(f"empty seed range {part!r}")
            seeds.extend(range(low, high + 1))
        else:
            seeds.append(int(part))
    if not seeds:
        raise ValueError(f"no seeds in {text!r}")
    return seeds


def _serve_geometry(config) -> tuple:
    """``(frame_width, n_actions)`` implied by a conf's environment.

    Mirrors :class:`~repro.env.tuning_env.StorageTuningEnv`'s frame
    layout without building an environment — the daemon serves *remote*
    clusters, so only the geometry matters here.
    """
    from repro.core.actions import ActionSpace, lustre_parameters
    from repro.telemetry.indicators import frame_width as client_frame_width

    env = config.env
    width = client_frame_width(env.cluster.n_servers) * env.cluster.n_clients
    if env.include_server_pis:
        from repro.telemetry.server_monitor import server_frame_width

        width += env.cluster.n_servers * server_frame_width()
    if env.include_time_features:
        from repro.telemetry.timefeat import time_feature_width

        width += time_feature_width()
    params = env.parameters or lustre_parameters(
        window_default=env.cluster.max_rpcs_in_flight,
        rate_default=env.cluster.io_rate_limit,
    )
    return width, ActionSpace(params).n_actions


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the control-plane daemon until SIGINT/SIGTERM (exit 0)."""
    # Eager flag validation: nothing below binds a socket, forks a
    # trainer, or touches disk until every flag has been accepted.
    for label, value in (
        ("--port", args.port),
        ("--stats-port", args.stats_port),
    ):
        if value is not None and not 0 <= value <= 65535:
            print(
                f"{label} must be in [0, 65535], got {value}",
                file=sys.stderr,
            )
            return 2
    if args.max_clients < 1:
        print(
            f"--max-clients must be >= 1, got {args.max_clients}",
            file=sys.stderr,
        )
        return 2
    if args.read_timeout <= 0:
        print(
            f"--read-timeout must be > 0, got {args.read_timeout}",
            file=sys.stderr,
        )
        return 2
    if args.tick_stride < 1:
        print(
            f"--tick-stride must be >= 1, got {args.tick_stride}",
            file=sys.stderr,
        )
        return 2
    if args.out and os.path.exists(args.out):
        # Same rule as collect: each serving session is one fresh store.
        print(
            f"refusing to overwrite existing replay DB {args.out!r}; "
            f"each serving session is one fresh store — pick a new "
            f"path or remove the old file first",
            file=sys.stderr,
        )
        return 2
    if args.snapshot_every_s is not None and args.snapshot_every_s <= 0:
        print(
            f"--snapshot-every-s must be > 0, got {args.snapshot_every_s}",
            file=sys.stderr,
        )
        return 2
    if args.snapshot_every_s is not None and not args.snapshot_dir:
        print("--snapshot-every-s needs --snapshot-dir", file=sys.stderr)
        return 2
    resume_path = None
    if args.resume is not None:
        from repro.serve import SERVE_SNAPSHOT_NAME

        if args.resume:
            resume_path = args.resume
        elif args.snapshot_dir:
            resume_path = os.path.join(
                args.snapshot_dir, SERVE_SNAPSHOT_NAME
            )
        else:
            print(
                "--resume without a path needs --snapshot-dir",
                file=sys.stderr,
            )
            return 2
        if not os.path.exists(resume_path):
            print(f"no such snapshot: {resume_path}", file=sys.stderr)
            return 2
    config = load_config(args.config)
    # Flag > conf > default, the collect conventions: the conf may name
    # the inline backend (the session default); the daemon has no
    # session tick loop to train inside, so that resolves to serial.
    backend = args.trainer_backend or config.trainer_backend
    if backend == "inline":
        backend = "serial"
    if backend == "none":
        for flag in ("train_ratio", "sync_every"):
            if getattr(args, flag) is not None:
                print(
                    f"--{flag.replace('_', '-')} needs a trainer "
                    f"backend, but --trainer-backend is 'none'",
                    file=sys.stderr,
                )
                return 2
    ratio = (
        args.train_ratio
        if args.train_ratio is not None
        else config.train_ratio
    )
    from repro.replaydb import CACHE_ONLY
    from repro.serve import CapesServer, ServeConfig, run_server

    frame_width, n_actions = _serve_geometry(config)
    try:
        serve_config = ServeConfig(
            frame_width=frame_width,
            n_actions=n_actions,
            host=args.host,
            port=args.port,
            stats_port=args.stats_port,
            max_clients=args.max_clients,
            read_timeout=args.read_timeout,
            tick_stride=args.tick_stride,
            db_path=args.out if args.out else CACHE_ONLY,
            trainer_backend=backend,
            train_ratio=(
                float(ratio)
                if ratio is not None
                else float(config.train_steps_per_tick)
            ),
            sync_every=(
                args.sync_every
                if args.sync_every is not None
                else config.sync_every
            ),
            snapshot_dir=args.snapshot_dir,
            snapshot_every_s=(
                args.snapshot_every_s
                if args.snapshot_every_s is not None
                else 30.0
            ),
            greedy=args.greedy,
            seed=config.seed,
            hp=config.env.hp,
            loss=config.loss,
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    server = CapesServer(serve_config)
    if resume_path is not None:
        from repro.snapshot import SessionSnapshot, SnapshotError

        try:
            server.restore_state(SessionSnapshot.load(resume_path))
        except SnapshotError as exc:
            print(f"cannot resume from {resume_path}: {exc}", file=sys.stderr)
            return 2
        print(
            f"resumed from {resume_path}: "
            f"{len(server.stats.clusters)} cluster(s), "
            f"{len(server.db)} replay row(s), weight epoch "
            f"{server.stats_snapshot()['weight_epoch']}",
            flush=True,
        )

    def announce(s) -> None:
        line = f"serving on {s.config.host}:{s.port}"
        if s.stats_port is not None:
            line += f" (stats: http://{s.config.host}:{s.stats_port}/stats)"
        print(line, flush=True)

    run_server(server, announce=announce)
    snap = server.stats
    print(
        f"served {snap.decisions_total} decisions over "
        f"{snap.frames_total} frames from {len(snap.clusters)} "
        f"cluster(s); {snap.connections_total} connection(s), "
        f"{snap.resyncs} resync(s)"
    )
    if snap.trainer:
        print(
            f"trained {snap.trainer['steps_attempted']} SGD steps "
            f"({snap.trainer['backend']} backend)"
        )
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    tuners = [t.strip() for t in args.tuners.split(",") if t.strip()]
    unknown = sorted(set(tuners) - set(tuner_names()))
    if unknown:
        print(
            f"unknown tuners {unknown}; registered: {tuner_names()}",
            file=sys.stderr,
        )
        return 2
    try:
        seeds = _parse_seeds(args.seeds)
    except ValueError as exc:
        print(f"bad --seeds value: {exc}", file=sys.stderr)
        return 2
    if args.n_envs > 1 and set(tuners) != {"capes"}:
        print(
            "--n-envs > 1 (vectorized collection) currently supports the "
            "'capes' tuner only",
            file=sys.stderr,
        )
        return 2
    # Session knobs from the conf.py apply to the DQN tuner only; the
    # workers re-load the conf themselves via spec.conf_path.  Loading
    # also runs any register_env() calls the conf makes, so the --env
    # check below must come after it.
    cfg = load_config(args.config)
    # Trainer cadence: flag > conf > default, knob by knob.
    trainer_backend = args.trainer_backend or cfg.trainer_backend
    train_ratio = (
        args.train_ratio if args.train_ratio is not None else cfg.train_ratio
    )
    sync_every = (
        args.sync_every if args.sync_every is not None else cfg.sync_every
    )
    if (
        trainer_backend != "inline" or train_ratio is not None
    ) and set(tuners) != {"capes"}:
        print(
            "--trainer-backend/--train-ratio (or the conf's "
            "TRAINER_BACKEND/TRAIN_RATIO) configure the DQN training "
            "cadence; they apply to the 'capes' tuner only",
            file=sys.stderr,
        )
        return 2
    from repro.env import env_names
    from repro.scenarios import has_scenario

    # Resolver-backed scenario names (fuzz-<seed>-<index>) are env keys
    # too but unbounded, so they resolve via has_scenario rather than
    # appearing in the env_names() enumeration.
    if args.env not in env_names() and not has_scenario(args.env):
        print(
            f"unknown environment {args.env!r}; registered: {env_names()}",
            file=sys.stderr,
        )
        return 2
    from repro.scenarios import scenario_names

    scenario_kwargs = {}
    if args.scenario_kwargs:
        try:
            scenario_kwargs = json.loads(args.scenario_kwargs)
        except json.JSONDecodeError as exc:
            print(f"bad --scenario-kwargs JSON: {exc}", file=sys.stderr)
            return 2
        if not isinstance(scenario_kwargs, dict):
            print(
                f"bad --scenario-kwargs: expected a JSON object, got "
                f"{type(scenario_kwargs).__name__}",
                file=sys.stderr,
            )
            return 2
    # The timeline may be named either way: --scenario NAME, or a
    # scenario-named --env (spec.build_env reroutes the latter).
    if args.scenario is not None and has_scenario(args.scenario):
        effective_scenario = args.scenario
        if args.env not in ("sim-lustre", args.scenario):
            print(
                f"--scenario {args.scenario!r} attaches through the "
                f"sim-lustre backend; it cannot combine with "
                f"--env {args.env!r}",
                file=sys.stderr,
            )
            return 2
    elif has_scenario(args.env):
        effective_scenario = args.env
    else:
        effective_scenario = None
    if effective_scenario is not None:
        from repro.scenarios import make_scenario

        try:
            # Fail fast on factory-kwarg typos and bad values here, not
            # per-run deep inside the worker pool.
            make_scenario(effective_scenario, **scenario_kwargs)
        except (TypeError, ValueError) as exc:
            print(f"bad --scenario-kwargs: {exc}", file=sys.stderr)
            return 2
        print(
            f"scenario {effective_scenario!r}: perturbation timeline "
            f"attached to every run"
        )
    elif scenario_kwargs:
        print(
            f"--scenario-kwargs needs a registered scenario, but "
            f"{args.scenario!r} is only a label; registered: "
            f"{scenario_names()}",
            file=sys.stderr,
        )
        return 2
    base = ExperimentSpec(
        conf_path=args.config,
        scenario=args.scenario,
        scenario_kwargs=scenario_kwargs,
        env=args.env,
        n_envs=args.n_envs,
        vector_backend=args.vector_backend,
        trainer_backend=trainer_backend,
        train_ratio=train_ratio,
        sync_every=sync_every,
        budget=RunBudget(
            train_ticks=args.train_ticks,
            eval_ticks=args.eval_ticks,
            epoch_ticks=args.epoch_ticks,
        ),
    )
    specs = grid(
        base,
        tuners=tuners,
        seeds=seeds,
        tuner_kwargs={
            "capes": {
                "train_steps_per_tick": cfg.train_steps_per_tick,
                "loss": cfg.loss,
            }
        },
    )
    print(
        f"sweeping {len(tuners)} tuner(s) x {len(seeds)} seed(s) "
        f"with {args.jobs} job(s)..."
    )
    runner = ExperimentRunner(jobs=args.jobs, artifacts_dir=args.artifacts)
    results = runner.run(specs)
    print(results.format_table(unit_scale=MBPS_PER_UNIT, unit=" MB/s"))
    if args.artifacts:
        print(f"per-run artifacts: {args.artifacts}/runs.jsonl")
    return 0


def cmd_fuzz_scenarios(args: argparse.Namespace) -> int:
    from repro.scenarios import has_scenario, make_scenario
    from repro.scenarios.fuzz import (
        Candidate,
        FUZZ_NAME_RE,
        SEEDED_BURSTY_NAME,
        ScenarioFuzzer,
        merge_frontier,
    )

    for knob in ("budget", "top", "jobs"):
        if getattr(args, knob) < 1:
            print(f"--{knob} must be >= 1", file=sys.stderr)
            return 2
    if args.score is not None and args.score_events is not None:
        print(
            "--score and --score-events are exclusive single-candidate "
            "modes; pass one",
            file=sys.stderr,
        )
        return 2
    fuzzer = ScenarioFuzzer(args.seed, jobs=args.jobs)
    if args.score is not None or args.score_events is not None:
        # Single-candidate re-run mode: this is the exact command every
        # frontier entry prints as its repro line.
        if args.score is not None:
            if not has_scenario(args.score):
                print(
                    f"unknown scenario {args.score!r}; --score takes a "
                    f"name-derivable fuzzed scenario "
                    f"(fuzz-<root_seed>-<index> or "
                    f"{SEEDED_BURSTY_NAME!r})",
                    file=sys.stderr,
                )
                return 2
            scenario = make_scenario(args.score)
            derivable = bool(
                FUZZ_NAME_RE.match(args.score)
                or args.score == SEEDED_BURSTY_NAME
            )
            cand = Candidate(
                name=scenario.name,
                events=scenario.events,
                origin="score",
                derivable=derivable,
            )
        else:
            try:
                payload = json.loads(args.score_events)
                if not isinstance(payload, dict) or "events" not in payload:
                    raise ValueError(
                        "expected a JSON object with an 'events' list"
                    )
                scenario = make_scenario(
                    "fuzzed",
                    name=payload.get("name", "fuzzed"),
                    events=payload["events"],
                )
            except (json.JSONDecodeError, ValueError, TypeError, KeyError) as exc:
                print(f"bad --score-events JSON: {exc}", file=sys.stderr)
                return 2
            cand = Candidate(
                name=scenario.name,
                events=scenario.events,
                origin="score",
                derivable=False,
            )
        cand = fuzzer.score_one(cand)
        print(json.dumps(cand.to_dict(), indent=2, sort_keys=True))
        return 0
    print(
        f"fuzzing {args.budget} candidate timeline(s) "
        f"(strategy={args.strategy}, root_seed={args.seed}, "
        f"jobs={args.jobs}; 2 runs per candidate)..."
    )
    result = fuzzer.search(strategy=args.strategy, budget=args.budget)
    section = result.frontier_section(top_k=args.top)
    header = f"{'score%':>8}  {'origin':<24} name"
    print(header)
    for row in section["top"]:
        print(
            f"{row['tuner_vs_static_pct']:>+8.2f}  "
            f"{row['origin']:<24} {row['name']}"
        )
        print(f"          repro: {row['repro']}")
    if args.out:
        merge_frontier(args.out, section)
        print(f"fuzzed_frontier ({len(section['top'])} entries) -> {args.out}")
    return 0


def cmd_window_sweep(args: argparse.Namespace) -> int:
    windows = [int(w) for w in args.window.split(",")]
    config = load_config(args.config)
    rows = []
    for w in windows:
        from repro.env import make_env

        env = make_env("sim-lustre", config=config.env)
        env.reset()
        env.set_params({"max_rpcs_in_flight": w})
        env.run_ticks(args.settle)
        rewards = env.run_ticks(args.ticks)
        s = analyze(rewards, trim=False)
        rows.append((w, s))
        env.close()
    print(f"{'window':>8} {'throughput':>16}")
    for w, s in rows:
        print(
            f"{w:>8} {s.mean * MBPS_PER_UNIT:>10.1f} "
            f"± {s.ci_halfwidth * MBPS_PER_UNIT:.1f} MB/s"
        )
    best = max(rows, key=lambda r: r[1].mean)
    print(f"best window: {best[0]}")
    return 0


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="CAPES reproduction command-line interface",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser, default_ticks: int) -> None:
        p.add_argument("--config", required=True, help="conf.py path")
        p.add_argument(
            "--ticks",
            type=int,
            default=default_ticks,
            help="session length in action ticks (simulated seconds)",
        )

    p = sub.add_parser("train", help="run an online training session")
    common(p, 1500)
    p.add_argument("--checkpoint", default=None, help="save model here")
    p.set_defaults(fn=cmd_train)

    p = sub.add_parser("evaluate", help="measure tuned performance")
    common(p, 300)
    p.add_argument("--checkpoint", default=None, help="load model from here")
    p.set_defaults(fn=cmd_evaluate)

    p = sub.add_parser("baseline", help="measure untuned performance")
    common(p, 300)
    p.set_defaults(fn=cmd_baseline)

    p = sub.add_parser(
        "collect",
        help="monitoring-only data collection into a replay DB (§3.3)",
    )
    common(p, 600)
    p.add_argument(
        "--n-envs",
        type=int,
        default=1,
        help="clusters collecting in parallel, fanned into one replay DB",
    )
    p.add_argument(
        "--vector-backend",
        choices=("serial", "fork", "vec", "shards"),
        default="serial",
        help="how the collecting clusters are stepped (vec: one "
        "struct-of-arrays fleet advanced by numpy array ops; shards: "
        "remote shard hosts over TCP, see --shard)",
    )
    p.add_argument(
        "--shard",
        action="append",
        default=None,
        metavar="HOST:PORT",
        help="attach a running `repro shard-host` (repeatable, fleet "
        "order; implies --vector-backend shards).  --n-envs must equal "
        "the total env count the shards host",
    )
    p.add_argument(
        "--chunk",
        type=int,
        default=None,
        help="ticks per worker round-trip (default: all of --ticks)",
    )
    p.add_argument(
        "--out",
        default=None,
        help="SQLite path for the collected replay DB; omitted = "
        "cache-only (records are not persisted).  With --n-envs N > 1 "
        "the stored ticks are block-strided (cluster i's tick t lands "
        "at i*65536 + t), so offline consumers must sample block-aware",
    )
    p.add_argument(
        "--train",
        action="store_true",
        help="run the decoupled DRL engine against the fan-in replay DB "
        "while collecting (§3's continuous training)",
    )
    p.add_argument(
        "--trainer-backend",
        choices=("serial", "process"),
        default=None,
        help="with --train: interleave training bursts with collection "
        "chunks (serial) or overlap them in a forked trainer worker "
        "(process).  Default: the conf's TRAINER_BACKEND (inline "
        "resolves to serial here)",
    )
    p.add_argument(
        "--train-ratio",
        type=float,
        default=None,
        help="with --train: SGD steps per collected action tick "
        "(fractions accumulate; default: the conf's TRAIN_RATIO, "
        "else TRAIN_STEPS_PER_TICK)",
    )
    p.add_argument(
        "--sync-every",
        type=int,
        default=None,
        help="with --train, process backend: SGD steps per weight "
        "broadcast (default: the conf's SYNC_EVERY)",
    )
    p.add_argument(
        "--checkpoint",
        default=None,
        help="with --train: save the trained model here",
    )
    p.add_argument(
        "--snapshot-every",
        type=int,
        default=None,
        help="write a full session snapshot every K ticks (needs "
        "--snapshot-dir); a resumed session is byte-identical to the "
        "uninterrupted run",
    )
    p.add_argument(
        "--snapshot-dir",
        default=None,
        help="directory for snapshot-NNNNNNNN.npz artifacts (alone: "
        "one snapshot at completion)",
    )
    p.set_defaults(fn=cmd_collect)

    p = sub.add_parser(
        "resume",
        help="continue a snapshotted collect session byte-identically",
    )
    p.add_argument("snapshot", help="snapshot-NNNNNNNN.npz artifact to resume")
    p.add_argument("--config", required=True, help="conf.py path")
    p.add_argument(
        "--ticks",
        type=int,
        default=None,
        help="run to this total tick count (default: the original "
        "session's total)",
    )
    p.add_argument(
        "--out",
        default=None,
        help="SQLite path for the rebuilt replay DB (omitted = cache-only)",
    )
    p.add_argument(
        "--snapshot-every",
        type=int,
        default=None,
        help="keep snapshotting every K ticks while resumed",
    )
    p.add_argument(
        "--snapshot-dir",
        default=None,
        help="directory for snapshots written by the resumed session",
    )
    p.add_argument(
        "--shard",
        action="append",
        default=None,
        metavar="HOST:PORT",
        help="for sharded sessions: attach these shard hosts instead of "
        "the addresses recorded in the snapshot (any layout with the "
        "same total env count)",
    )
    p.set_defaults(fn=cmd_resume)

    p = sub.add_parser(
        "replay",
        help="time-travel: restore the nearest snapshot and step to a tick",
    )
    p.add_argument("--config", required=True, help="conf.py path")
    p.add_argument(
        "--at",
        type=int,
        required=True,
        help="target tick to reconstruct deterministically",
    )
    p.add_argument(
        "--snapshot-dir",
        required=True,
        help="directory holding the session's snapshot-*.npz artifacts",
    )
    p.set_defaults(fn=cmd_replay)

    p = sub.add_parser(
        "shard-host",
        help="host a fraction of a sharded collection fleet over TCP",
    )
    p.add_argument(
        "--bind",
        default="127.0.0.1:0",
        metavar="HOST:PORT",
        help="listen address; port 0 binds an ephemeral port (the "
        "resolved address is printed on startup)",
    )
    p.add_argument(
        "--config",
        default=None,
        help="conf.py whose ENV the hosted clusters are built from "
        "(must match the master's conf; seeds come from the master)",
    )
    p.add_argument(
        "--env",
        default=None,
        help="registered environment name to host instead of --config "
        "(see repro.env.env_names())",
    )
    p.add_argument(
        "--n-envs",
        type=int,
        default=1,
        help="sub-environments this shard hosts",
    )
    p.add_argument(
        "--once",
        action="store_true",
        help="serve exactly one master session, then exit (benchmarks, "
        "tests)",
    )
    p.set_defaults(fn=cmd_shard_host)

    p = sub.add_parser(
        "serve",
        help="run the control-plane daemon: telemetry in, decisions out",
    )
    p.add_argument("--config", required=True, help="conf.py path")
    p.add_argument(
        "--host", default="127.0.0.1", help="interface to bind"
    )
    p.add_argument(
        "--port",
        type=int,
        default=7007,
        help="client-protocol TCP port (0 = ephemeral, printed on start)",
    )
    p.add_argument(
        "--stats-port",
        type=int,
        default=None,
        help="HTTP /stats port (0 = ephemeral; omitted = disabled)",
    )
    p.add_argument(
        "--max-clients",
        type=int,
        default=64,
        help="maximum registered clusters (bounds replay blocks)",
    )
    p.add_argument(
        "--read-timeout",
        type=float,
        default=60.0,
        help="seconds a connected client may stall before being dropped",
    )
    p.add_argument(
        "--tick-stride",
        type=int,
        default=4096,
        help="per-cluster replay block size: cluster i's tick t lands "
        "at i*stride + t in the shared store",
    )
    p.add_argument(
        "--trainer-backend",
        choices=("none", "serial", "process"),
        default=None,
        help="continuous training against the landed telemetry: burst "
        "on the serving loop (serial), overlap in a forked worker "
        "(process), or serve a frozen policy (none).  Default: the "
        "conf's TRAINER_BACKEND (inline resolves to serial here)",
    )
    p.add_argument(
        "--train-ratio",
        type=float,
        default=None,
        help="SGD steps per decision tick (fractions accumulate; "
        "default: the conf's TRAIN_RATIO, else TRAIN_STEPS_PER_TICK)",
    )
    p.add_argument(
        "--sync-every",
        type=int,
        default=None,
        help="SGD steps per checkpoint broadcast to connected clients "
        "(default: the conf's SYNC_EVERY)",
    )
    p.add_argument(
        "--greedy",
        action="store_true",
        help="serve argmax decisions only (no ε-greedy exploration)",
    )
    p.add_argument(
        "--out",
        default=None,
        help="SQLite path for the landed replay DB; omitted = "
        "cache-only.  Ticks are block-strided by --tick-stride",
    )
    p.add_argument(
        "--snapshot-dir",
        default=None,
        help="crash-recovery directory: the daemon atomically rewrites "
        "serve-latest.npz there every --snapshot-every-s seconds and "
        "once at shutdown",
    )
    p.add_argument(
        "--snapshot-every-s",
        type=float,
        default=None,
        help="seconds between crash-recovery snapshots (needs "
        "--snapshot-dir; default 30)",
    )
    p.add_argument(
        "--resume",
        nargs="?",
        const="",
        default=None,
        metavar="SNAPSHOT",
        help="restore a previous daemon's state before serving; with "
        "no path, resumes from --snapshot-dir/serve-latest.npz",
    )
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser(
        "fuzz-scenarios",
        help="adversarial scenario search: fuzz randomized event "
        "timelines and hunt for where capes stops beating static",
    )
    p.add_argument(
        "--budget",
        type=int,
        default=8,
        help="candidate timelines to score (each costs one capes run "
        "plus one static run)",
    )
    p.add_argument(
        "--seed",
        type=int,
        default=42,
        help="root seed: fuzzed timelines derive purely from "
        "(seed, index), so frontiers are identical across invocations",
    )
    p.add_argument(
        "--jobs", type=int, default=1, help="parallel worker processes"
    )
    p.add_argument(
        "--strategy",
        choices=("random", "hill_climb", "evolution"),
        default="evolution",
        help="search driver: random sweep baseline, greedy hill_climb, "
        "or a small (mu+lambda) evolution over timeline mutations",
    )
    p.add_argument(
        "--top",
        type=int,
        default=5,
        help="frontier size: the top-k most flat/losing-for-capes "
        "timelines reported",
    )
    p.add_argument(
        "--out",
        default=None,
        metavar="BENCH_JSON",
        help="merge the fuzzed_frontier section into this JSON file "
        "read-update-write (e.g. BENCH_scenarios.json)",
    )
    p.add_argument(
        "--score",
        default=None,
        metavar="NAME",
        help="re-score one name-derivable fuzzed scenario "
        "(fuzz-<root_seed>-<index>) and print its row instead of "
        "searching",
    )
    p.add_argument(
        "--score-events",
        default=None,
        metavar="JSON",
        help="re-score one serialized timeline "
        '(\'{"name": ..., "events": [...]}\', as printed in frontier '
        "repro commands) and print its row instead of searching",
    )
    p.set_defaults(fn=cmd_fuzz_scenarios)

    p = sub.add_parser(
        "sweep",
        help="multi-tuner / multi-seed experiment sweep (parallel)",
    )
    p.add_argument("--config", required=True, help="conf.py path")
    p.add_argument(
        "--tuners",
        default="capes",
        help=f"comma-separated tuner names from {tuner_names()}",
    )
    p.add_argument(
        "--seeds",
        default="0-2",
        help="comma-separated seeds; A-B items are inclusive ranges "
        "(e.g. '42', '0-4', '0-2,7')",
    )
    p.add_argument(
        "--jobs", type=int, default=1, help="parallel worker processes"
    )
    p.add_argument(
        "--env",
        default="sim-lustre",
        help="environment registry key (see repro.env.env_names())",
    )
    p.add_argument(
        "--n-envs",
        type=int,
        default=1,
        help="clusters per run, stepped in lockstep with experience "
        "fanned into one shared replay DB (capes tuner only)",
    )
    p.add_argument(
        "--vector-backend",
        choices=("serial", "fork", "vec"),
        default="serial",
        help="how vectorized clusters are stepped (vec: one "
        "struct-of-arrays fleet advanced by numpy array ops)",
    )
    p.add_argument(
        "--trainer-backend",
        choices=("inline", "serial", "process"),
        default=None,
        help="DQN training cadence (repro.train): inline = historical "
        "train-in-the-tick-loop, serial = interleaved bursts, process "
        "= continuous training in a forked worker (capes tuner only; "
        "default: the conf's TRAINER_BACKEND)",
    )
    p.add_argument(
        "--train-ratio",
        type=float,
        default=None,
        help="SGD steps per collected action tick (may be fractional; "
        "default: the conf's TRAIN_RATIO, else TRAIN_STEPS_PER_TICK)",
    )
    p.add_argument(
        "--sync-every",
        type=int,
        default=None,
        help="process trainer: SGD steps per weight broadcast (policy "
        "staleness bound; default: the conf's SYNC_EVERY)",
    )
    p.add_argument(
        "--train-ticks", type=int, default=600, help="training ticks per run"
    )
    p.add_argument(
        "--eval-ticks",
        type=int,
        default=120,
        help="baseline/tuned measurement ticks per run",
    )
    p.add_argument(
        "--epoch-ticks",
        type=int,
        default=60,
        help="ticks per search-tuner evaluation epoch",
    )
    p.add_argument(
        "--scenario",
        default="conf",
        help="report label; a registered scenario name (see "
        "repro.scenarios.scenario_names(), e.g. 'sim-lustre-bursty') "
        "additionally attaches that fault/perturbation timeline to "
        "every run's environment",
    )
    p.add_argument(
        "--scenario-kwargs",
        default=None,
        help="JSON object of factory knobs for a registered --scenario, "
        "e.g. '{\"start_tick\": 100}' (event timings are env ticks)",
    )
    p.add_argument(
        "--artifacts", default=None, help="directory for per-run JSONL"
    )
    p.set_defaults(fn=cmd_sweep)

    p = sub.add_parser(
        "window-sweep", help="static congestion-window sweep"
    )
    common(p, 60)
    p.add_argument(
        "--window",
        default="1,2,4,8,16,32",
        help="comma-separated window values",
    )
    p.add_argument(
        "--settle", type=int, default=15, help="settling ticks per value"
    )
    p.set_defaults(fn=cmd_window_sweep)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = make_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
