"""Versioned session-snapshot artifact and the chained rollout digest.

CAPES (§3) runs continuously against live clusters, so crash recovery
and reproducible post-hoc debugging are part of the deployed shape.
Two primitives make that tractable:

- :class:`SessionSnapshot` — one ``.npz`` artifact holding every
  mutable layer of a session as named sections of JSON metadata plus
  numpy arrays, stamped with a format version and a blake2b integrity
  digest that is verified on load.  Saves are atomic (write-temp +
  rename) so a crash mid-write never leaves a torn artifact behind.
- :class:`RolloutDigest` — a *chained* per-tick blake2b over the
  reward columns of a rollout.  Chaining per tick (rather than hashing
  one big buffer) makes the digest independent of chunking **and**
  serializable: the 32-byte chain state is the only thing a snapshot
  needs to carry for a resumed run to extend the same digest.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

__all__ = [
    "FORMAT_VERSION",
    "SnapshotError",
    "SessionSnapshot",
    "RolloutDigest",
    "rng_state",
    "set_rng_state",
]

#: Artifact format version; bumped on incompatible layout changes.
FORMAT_VERSION = 1

#: npz entry carrying the JSON metadata (as uint8 bytes).
_META_KEY = "__meta__"

#: meta key carrying format/digest — excluded from the digest itself.
_INTEGRITY_KEY = "__integrity__"

_DIGEST_SIZE = 32


class SnapshotError(RuntimeError):
    """A snapshot could not be captured, saved, loaded, or applied."""


def _jsonable(obj):
    """JSON encoder fallback for the numpy scalars that leak into meta."""
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    raise TypeError(f"not JSON-serializable: {type(obj).__name__}")


def _canonical_json(meta: dict) -> bytes:
    return json.dumps(
        meta, sort_keys=True, separators=(",", ":"), default=_jsonable
    ).encode()


def rng_state(gen: np.random.Generator) -> dict:
    """A JSON-able capture of ``gen``'s bit-generator state."""
    return gen.bit_generator.state


def set_rng_state(gen: np.random.Generator, state: dict) -> None:
    """Overwrite ``gen``'s bit-generator state with a captured one."""
    current = gen.bit_generator.state["bit_generator"]
    captured = state.get("bit_generator")
    if captured != current:
        raise SnapshotError(
            f"bit-generator mismatch: snapshot has {captured!r}, "
            f"stream is {current!r}"
        )
    gen.bit_generator.state = state


class RolloutDigest:
    """Chained blake2b over per-tick reward columns, chunking-invariant.

    ``digest_t = blake2b(digest_{t-1} || rewards[:, t])`` — feeding the
    same rollout in one 200-tick block or ten 20-tick blocks yields the
    same final digest, and the chain state round-trips through a
    snapshot as a 64-char hex string.  This is the byte-identity
    contract ``repro resume`` is held to.
    """

    _SEED = b"repro-rollout-digest-v1"

    def __init__(self, state: Optional[str] = None):
        if state is None:
            state = hashlib.blake2b(
                self._SEED, digest_size=_DIGEST_SIZE
            ).hexdigest()
        if len(state) != 2 * _DIGEST_SIZE:
            raise SnapshotError(
                f"digest state must be {2 * _DIGEST_SIZE} hex chars, "
                f"got {len(state)}"
            )
        self._state = bytes.fromhex(state)

    def update(self, rewards: np.ndarray) -> "RolloutDigest":
        """Fold a ``(n_envs, k)`` (or ``(k,)``) reward block, tick by tick."""
        block = np.ascontiguousarray(np.asarray(rewards, dtype=np.float64))
        if block.ndim == 1:
            block = block[:, None]
        if block.ndim != 2:
            raise SnapshotError(
                f"rewards must be 1-D or 2-D, got shape {block.shape}"
            )
        state = self._state
        for t in range(block.shape[1]):
            h = hashlib.blake2b(state, digest_size=_DIGEST_SIZE)
            h.update(np.ascontiguousarray(block[:, t]).tobytes())
            state = h.digest()
        self._state = state
        return self

    @property
    def hexdigest(self) -> str:
        """Current chain state as hex — the resumable digest value."""
        return self._state.hex()

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, RolloutDigest) and self._state == other._state
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RolloutDigest({self.hexdigest[:12]}…)"


class SessionSnapshot:
    """Named sections of JSON metadata + numpy arrays, one npz artifact.

    Sections keep layers separate (``"env"``, ``"agent"``, ``"trainer"``,
    ``"session"``, …): each contributes one JSON-able metadata dict via
    :meth:`put` plus any number of arrays stored under
    ``"<section>::<name>"`` keys.  :meth:`save` stamps the artifact with
    :data:`FORMAT_VERSION` and a blake2b digest over the canonical
    serialization; :meth:`load` refuses artifacts whose digest or
    version does not check out.
    """

    def __init__(
        self,
        meta: Optional[dict] = None,
        arrays: Optional[Dict[str, np.ndarray]] = None,
    ):
        self.meta: dict = dict(meta or {})
        self.arrays: Dict[str, np.ndarray] = dict(arrays or {})

    # -- section API -----------------------------------------------------------
    def put(
        self,
        section: str,
        meta: Optional[dict] = None,
        arrays: Optional[Dict[str, np.ndarray]] = None,
    ) -> None:
        """Store one layer's metadata and arrays under ``section``."""
        if "::" in section or section == _META_KEY:
            raise SnapshotError(f"invalid section name {section!r}")
        if meta is not None:
            self.meta[section] = meta
        for name, arr in (arrays or {}).items():
            self.arrays[f"{section}::{name}"] = np.asarray(arr)

    def section(self, name: str) -> dict:
        """The metadata dict stored for ``name`` (raises if absent)."""
        try:
            return self.meta[name]
        except KeyError:
            raise SnapshotError(f"snapshot has no section {name!r}") from None

    def has_section(self, name: str) -> bool:
        """Whether :meth:`put` stored metadata under ``name``."""
        return name in self.meta and name != _INTEGRITY_KEY

    def section_arrays(self, section: str) -> Dict[str, np.ndarray]:
        """All arrays stored under ``section``, keyed by bare name."""
        prefix = section + "::"
        return {
            key[len(prefix):]: arr
            for key, arr in self.arrays.items()
            if key.startswith(prefix)
        }

    # -- integrity -------------------------------------------------------------
    def digest(self) -> str:
        """blake2b over the canonical serialization (meta + sorted arrays)."""
        h = hashlib.blake2b(digest_size=_DIGEST_SIZE)
        meta = {k: v for k, v in self.meta.items() if k != _INTEGRITY_KEY}
        h.update(_canonical_json(meta))
        for key in sorted(self.arrays):
            arr = np.ascontiguousarray(self.arrays[key])
            h.update(key.encode())
            h.update(str(arr.dtype).encode())
            h.update(repr(arr.shape).encode())
            h.update(arr.tobytes())
        return h.hexdigest()

    # -- persistence -----------------------------------------------------------
    def save(self, path: Union[str, Path]) -> Path:
        """Write the artifact atomically; returns the final path."""
        path = Path(path)
        meta = dict(self.meta)
        meta[_INTEGRITY_KEY] = {
            "format": FORMAT_VERSION,
            "digest": self.digest(),
        }
        payload = dict(self.arrays)
        payload[_META_KEY] = np.frombuffer(
            _canonical_json(meta), dtype=np.uint8
        )
        fd, tmp = tempfile.mkstemp(
            dir=str(path.parent), prefix=path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                np.savez_compressed(fh, **payload)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:  # pragma: no cover - best-effort cleanup
                pass
            raise
        return path

    @classmethod
    def load(
        cls, path: Union[str, Path], verify: bool = True
    ) -> "SessionSnapshot":
        """Read an artifact back, verifying version and digest."""
        path = Path(path)
        with np.load(path) as data:
            if _META_KEY not in data.files:
                raise SnapshotError(f"{path}: not a session snapshot")
            meta = json.loads(bytes(data[_META_KEY].tobytes()).decode())
            arrays = {
                key: data[key] for key in data.files if key != _META_KEY
            }
        integrity = meta.pop(_INTEGRITY_KEY, None)
        if integrity is None:
            raise SnapshotError(f"{path}: missing integrity record")
        if integrity.get("format") != FORMAT_VERSION:
            raise SnapshotError(
                f"{path}: format {integrity.get('format')!r} not supported "
                f"(expected {FORMAT_VERSION})"
            )
        snap = cls(meta=meta, arrays=arrays)
        if verify:
            found = snap.digest()
            if found != integrity.get("digest"):
                raise SnapshotError(
                    f"{path}: integrity digest mismatch "
                    f"(artifact corrupt or hand-edited)"
                )
        return snap
