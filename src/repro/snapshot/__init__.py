"""Deterministic session snapshot/resume for CAPES sessions.

The paper's control plane (§3) runs continuously against live
clusters; crash recovery and reproducible post-hoc debugging are part
of the deployed shape.  This package captures **every mutable layer**
of a running session — environment state (reference simulator op logs
*or* the vectorized fleet's arrays), scenario runtimes, agent networks
+ optimizer + epsilon schedule, trainer cadence, replay frontiers and
cache rows, and every RNG stream's ``bit_generator.state`` — into one
versioned, integrity-checked ``.npz`` artifact from which a fresh
interpreter resumes **byte-identically**: the resumed run's remaining
ticks extend the uninterrupted run's chained rollout digest exactly.

Entry points: ``repro collect --snapshot-every K --snapshot-dir D``,
``repro resume <snapshot>``, ``repro replay --at TICK`` (time-travel),
and ``repro serve --snapshot-dir D --resume`` (daemon crash recovery).
"""

from repro.snapshot.core import (
    FORMAT_VERSION,
    RolloutDigest,
    SessionSnapshot,
    SnapshotError,
    rng_state,
    set_rng_state,
)
from repro.snapshot.layers import (
    capture_agent,
    capture_replay,
    capture_trainer,
    restore_agent,
    restore_replay,
    restore_trainer,
)
from repro.snapshot.session import (
    CollectOutcome,
    build_session_snapshot,
    restore_session_state,
    run_collect_session,
    snapshot_path,
)

__all__ = [
    "FORMAT_VERSION",
    "SnapshotError",
    "SessionSnapshot",
    "RolloutDigest",
    "rng_state",
    "set_rng_state",
    "capture_agent",
    "restore_agent",
    "capture_trainer",
    "restore_trainer",
    "capture_replay",
    "restore_replay",
    "CollectOutcome",
    "build_session_snapshot",
    "restore_session_state",
    "run_collect_session",
    "snapshot_path",
]
