"""Per-layer capture/restore helpers for session snapshots.

Each pair of functions maps one mutable layer of a running session onto
``(meta, arrays)`` — the currency of
:class:`~repro.snapshot.core.SessionSnapshot` sections — and back.  The
restore side follows one rule everywhere: **rebuild object graphs
normally, then overwrite every RNG stream's captured state last**,
because :func:`~repro.util.rng.derive_rng` draws salt from its parent
(construction itself consumes generator state).
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.nn.checkpoint import checkpoint_from_bytes, checkpoint_to_bytes
from repro.snapshot.core import SnapshotError, rng_state, set_rng_state

__all__ = [
    "capture_agent",
    "restore_agent",
    "capture_trainer",
    "restore_trainer",
    "capture_replay",
    "restore_replay",
]


# -- agent (networks + optimizer + epsilon + RNG + counters) -------------------
def capture_agent(agent) -> Tuple[dict, Dict[str, np.ndarray]]:
    """Everything a :class:`~repro.rl.agent.DQNAgent` mutates.

    The online network rides in an :mod:`repro.nn.checkpoint` blob
    *with* optimizer state (Adam moments included); the target network
    gets its own blob so the slow tracking copy survives byte-identically
    rather than being re-cloned from the online weights.
    """
    eps = agent.epsilon
    meta = {
        "epsilon": {
            "value": float(eps._value),
            "ticks": int(eps.ticks),
            "bumps": int(eps.bumps),
        },
        "rng": rng_state(agent.rng),
        "train_steps": int(agent.train_steps),
        "actions_taken": int(agent.actions_taken),
        "random_actions_taken": int(agent.random_actions_taken),
    }
    arrays = {
        "online": np.frombuffer(
            checkpoint_to_bytes(agent.online.net, optimizer=agent.optimizer),
            dtype=np.uint8,
        ),
        "target": np.frombuffer(
            checkpoint_to_bytes(agent.target.net), dtype=np.uint8
        ),
        "loss_history": np.asarray(list(agent.loss_history), dtype=np.float64),
    }
    return meta, arrays


def restore_agent(agent, meta: dict, arrays: Dict[str, np.ndarray]) -> None:
    """Overwrite ``agent``'s mutable state with a captured one.

    ``agent`` must be freshly built from the same config (dims, loss,
    optimizer class); this swaps its networks, optimizer state, epsilon
    schedule, counters and RNG stream in place.
    """
    net, _ = checkpoint_from_bytes(
        arrays["online"].tobytes(), optimizer=agent.optimizer
    )
    target_net, _ = checkpoint_from_bytes(arrays["target"].tobytes())
    # Pass the captured target explicitly: adopt_network without one
    # re-clones the online weights, which breaks byte-identity.
    agent.adopt_network(net, target_net=target_net)
    eps = meta["epsilon"]
    agent.epsilon._value = float(eps["value"])
    agent.epsilon.ticks = int(eps["ticks"])
    agent.epsilon.bumps = int(eps["bumps"])
    set_rng_state(agent.rng, meta["rng"])
    agent.train_steps = int(meta["train_steps"])
    agent.actions_taken = int(meta["actions_taken"])
    agent.random_actions_taken = int(meta["random_actions_taken"])
    agent.loss_history.clear()
    agent.loss_history.extend(float(x) for x in arrays["loss_history"])


# -- trainer loop (debt/pending/stats) -----------------------------------------
def capture_trainer(loop) -> Tuple[dict, Dict[str, np.ndarray]]:
    """The :class:`~repro.train.loop.TrainerLoop` accounting state.

    Agent weights/optimizer ride in the agent section; this captures
    the *cadence* — fractional training debt, pending ticks, and the
    stats counters — so a resumed run fires its next SGD step at the
    same tick the uninterrupted run would have.
    """
    stats = loop.stats
    meta = {
        "backend": loop.config.backend,
        "pending_ticks": float(loop._pending_ticks),
        "debt": float(loop._debt),
        "steps_attempted": int(stats.steps_attempted),
        "broadcasts_applied": int(stats.broadcasts_applied),
        "stale_discarded": int(stats.stale_discarded),
        "batches_validated": int(stats.batches_validated),
        "weights_version": int(stats.weights_version),
        "epoch": int(stats.epoch),
    }
    arrays = {"losses": np.asarray(stats.losses, dtype=np.float64)}
    return meta, arrays


def restore_trainer(
    loop, meta: dict, arrays: Dict[str, np.ndarray], bump_epoch: bool = False
) -> None:
    """Restore a freshly built loop's accounting from a capture.

    Must run before :meth:`~repro.train.loop.TrainerLoop.begin` so a
    process-backend worker forks from the restored epoch.  With
    ``bump_epoch`` the epoch advances by one — the resume fence for the
    process backend, whose in-flight worker state died with the
    original process.
    """
    if meta["backend"] != loop.config.backend:
        raise SnapshotError(
            f"trainer backend mismatch: snapshot has {meta['backend']!r}, "
            f"loop is {loop.config.backend!r}"
        )
    loop._pending_ticks = float(meta["pending_ticks"])
    loop._debt = float(meta["debt"])
    stats = loop.stats
    stats.steps_attempted = int(meta["steps_attempted"])
    stats.broadcasts_applied = int(meta["broadcasts_applied"])
    stats.stale_discarded = int(meta["stale_discarded"])
    stats.batches_validated = int(meta["batches_validated"])
    stats.weights_version = int(meta["weights_version"])
    stats.epoch = int(meta["epoch"]) + (1 if bump_epoch else 0)
    stats.losses[:] = [float(x) for x in arrays["losses"]]


# -- replay frontier + cache rows ----------------------------------------------
def capture_replay(db, spans) -> Tuple[dict, Dict[str, np.ndarray]]:
    """The :class:`~repro.replaydb.TickSpans` frontiers plus every
    cached row under them, packed per block.

    Used by the serve resume path, where the replay cache is fed by
    remote telemetry and cannot be regenerated by replaying a
    simulator.
    """
    tops = [int(t) for t in spans.tops()]
    meta = {"tops": tops, "stride": int(spans.tick_stride)}
    if getattr(spans, "shard_sizes", None) is not None:
        # Shard topology is informational: block layout (and therefore
        # the captured rows) is placement-independent, so a sharded
        # capture restores onto any frontier with the same geometry.
        meta["shard_sizes"] = [int(k) for k in spans.shard_sizes]
    arrays: Dict[str, np.ndarray] = {}
    for i, top in enumerate(tops):
        if top < 0:
            continue
        packed = db.cache.records_between(
            i * spans.tick_stride, i * spans.tick_stride + top
        )
        arrays[f"ticks{i}"] = packed.ticks
        arrays[f"frames{i}"] = packed.frames
        arrays[f"actions{i}"] = packed.actions
        arrays[f"rewards{i}"] = packed.rewards
    return meta, arrays


def restore_replay(db, spans, meta: dict, arrays: Dict[str, np.ndarray]) -> None:
    """Refill ``db``'s cache and ``spans``' frontiers from a capture."""
    tops = meta["tops"]
    if len(tops) != len(spans.tops()):
        raise SnapshotError(
            f"span geometry mismatch: snapshot has {len(tops)} blocks, "
            f"live spans have {len(spans.tops())}"
        )
    if int(meta["stride"]) != int(spans.tick_stride):
        raise SnapshotError(
            f"tick-stride mismatch: snapshot has {meta['stride']}, "
            f"live spans have {spans.tick_stride}"
        )
    db.clear()
    spans.reset()
    for i, top in enumerate(tops):
        if top < 0:
            continue
        key = f"ticks{i}"
        if key in arrays and len(arrays[key]):
            db.put_many(
                arrays[key],
                arrays[f"frames{i}"],
                arrays[f"rewards{i}"],
                actions=arrays[f"actions{i}"],
            )
        spans.observe_top(i, int(top))
