"""Resumable collection sessions: the snapshot-aware collect loop.

This is the orchestration layer behind ``repro collect
--snapshot-every``, ``repro resume`` and ``repro replay``: one loop
that collects monitoring ticks (optionally with continuous training,
mirroring :func:`repro.train.loop.train_collect`'s cadence exactly),
maintains the chained rollout digest, and writes a full
:class:`~repro.snapshot.core.SessionSnapshot` at every tick boundary —
from which an identical loop in a *different interpreter* continues
with a byte-identical remaining-ticks trajectory.

Determinism contract: a resumed session extends the uninterrupted
run's rollout digest exactly.  For *training* state this additionally
requires the resumed run to use the same ``chunk`` (the serial
trainer bursts once per chunk) — the CLI persists it in the session
section so ``repro resume`` cannot get it wrong.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Union

import numpy as np

from repro.snapshot.core import (
    RolloutDigest,
    SessionSnapshot,
    SnapshotError,
    rng_state,
    set_rng_state,
)
from repro.snapshot.layers import (
    capture_agent,
    capture_trainer,
    restore_agent,
    restore_trainer,
)

__all__ = [
    "CollectOutcome",
    "build_session_snapshot",
    "restore_session_state",
    "run_collect_session",
    "snapshot_path",
]


def snapshot_path(snapshot_dir: Union[str, Path], done_ticks: int) -> Path:
    """The canonical artifact path for a boundary at ``done_ticks``."""
    return Path(snapshot_dir) / f"snapshot-{int(done_ticks):08d}.npz"


@dataclass
class CollectOutcome:
    """What one (possibly resumed) collection session produced."""

    #: Per-env per-tick rewards for the ticks *this* session ran —
    #: ``(n_envs, total_ticks - start_tick)``.
    rewards: np.ndarray
    #: The chained rollout digest over the *whole* run (prefix included).
    digest: RolloutDigest
    #: First tick index this session ran (0 for a fresh run).
    start_tick: int
    #: Total ticks the run spans.
    total_ticks: int
    #: Snapshot artifacts written, in order.
    snapshots: List[Path] = field(default_factory=list)
    #: Trainer stats, when the session trained.
    trainer_stats: Optional[object] = None


def build_session_snapshot(
    venv,
    done_ticks: int,
    total_ticks: int,
    digest: RolloutDigest,
    *,
    agent=None,
    loop=None,
    sampler=None,
    session_extra: Optional[dict] = None,
) -> SessionSnapshot:
    """Compose every live layer into one artifact."""
    snap = SessionSnapshot()
    session = {
        "done_ticks": int(done_ticks),
        "total_ticks": int(total_ticks),
        "digest": digest.hexdigest,
        "backend": venv.backend,
        "n_envs": int(venv.n_envs),
        "tick_stride": int(venv.tick_stride),
        "has_agent": agent is not None,
        "has_trainer": loop is not None,
    }
    if session_extra:
        session.update(session_extra)
    snap.put("session", meta=session)
    env = venv.snapshot()
    snap.put("env", meta=env["meta"], arrays=env["arrays"])
    if agent is not None:
        meta, arrays = capture_agent(agent)
        snap.put("agent", meta=meta, arrays=arrays)
    if loop is not None:
        meta, arrays = capture_trainer(loop)
        if sampler is not None:
            meta["sampler_rng"] = rng_state(sampler.rng)
        snap.put("trainer", meta=meta, arrays=arrays)
    return snap


def restore_session_state(
    snap: SessionSnapshot,
    venv,
    *,
    agent=None,
    loop=None,
    sampler=None,
    bump_epoch: bool = False,
) -> tuple:
    """Apply a session artifact onto freshly built objects.

    Restores the env (listeners already attached hear the replayed
    record stream), then the agent and trainer accounting, then every
    RNG stream state — construction before stream overwrite, always.
    Returns ``(done_ticks, total_ticks, digest)``.
    """
    session = snap.section("session")
    if int(session["n_envs"]) != venv.n_envs:
        raise SnapshotError(
            f"session has n_envs={session['n_envs']}, env has {venv.n_envs}"
        )
    if session["has_agent"] and agent is None:
        raise SnapshotError(
            "snapshot carries agent state but no agent was provided"
        )
    if session["has_trainer"] and loop is None:
        raise SnapshotError(
            "snapshot carries trainer state but no trainer was provided"
        )
    # Agent and trainer first: a process-backend trainer forks its
    # worker lazily on the first ingest, and the env restore below is
    # what fires those ingest listeners — the worker must fork from the
    # restored weights and epoch, not the fresh ones.
    if agent is not None and session["has_agent"]:
        restore_agent(agent, snap.section("agent"), snap.section_arrays("agent"))
    if loop is not None and session["has_trainer"]:
        meta = snap.section("trainer")
        restore_trainer(
            loop, meta, snap.section_arrays("trainer"), bump_epoch=bump_epoch
        )
        if sampler is not None and "sampler_rng" in meta:
            set_rng_state(sampler.rng, meta["sampler_rng"])
    venv.restore(
        {"meta": snap.section("env"), "arrays": snap.section_arrays("env")}
    )
    return (
        int(session["done_ticks"]),
        int(session["total_ticks"]),
        RolloutDigest(session["digest"]),
    )


def run_collect_session(
    venv,
    n_ticks: int,
    *,
    chunk: Optional[int] = None,
    agent=None,
    trainer_config=None,
    sampler_seed: Optional[int] = None,
    snapshot_every: Optional[int] = None,
    snapshot_dir: Optional[Union[str, Path]] = None,
    resume_from: Optional[SessionSnapshot] = None,
    stop_at: Optional[int] = None,
    session_extra: Optional[dict] = None,
) -> CollectOutcome:
    """Collect ``n_ticks`` monitoring ticks, snapshotting at boundaries.

    Without ``trainer_config`` this is ``venv.collect`` plus digest and
    snapshots; with it, the loop mirrors
    :func:`~repro.train.loop.train_collect` (listener attached before
    reset, one serial burst per chunk, drain at the end).  With
    ``resume_from`` the env/agent/trainer are restored first and
    collection continues from the captured tick; ``stop_at`` ends the
    session early at a boundary (the ``repro replay`` time-travel
    path).
    """
    if n_ticks < 1:
        raise ValueError(f"n_ticks must be >= 1, got {n_ticks}")
    if chunk is None:
        chunk = n_ticks
    if snapshot_every is not None and snapshot_every < 1:
        raise ValueError(f"snapshot_every must be >= 1, got {snapshot_every}")
    if snapshot_every is not None and snapshot_dir is None:
        raise ValueError("snapshot_every needs a snapshot_dir")

    loop = None
    sampler = None
    if trainer_config is not None:
        if agent is None:
            raise ValueError("training a collect session needs an agent")
        if venv.shared_db is None:
            raise ValueError(
                "training a collect session needs a shared fan-in DB"
            )
        # Mirror train_collect's backend split exactly — same cadence,
        # same streams — so snapshotted and plain runs are comparable.
        from repro.train.loop import TrainerConfig, TrainerLoop

        if trainer_config.backend == "process":
            loop = TrainerLoop(
                agent,
                trainer_config,
                frame_width=venv.frame_dim,
                stride=venv.tick_stride,
                n_blocks=venv.n_envs,
                sampler_seed=sampler_seed,
                cache_capacity=venv.n_envs * venv.tick_stride,
            )
        else:
            serial_cfg = TrainerConfig(
                backend=trainer_config.backend,
                train_ratio=trainer_config.train_ratio,
                interleave_ticks=(
                    chunk
                    if trainer_config.backend == "serial"
                    else trainer_config.interleave_ticks
                ),
                sync_every=trainer_config.sync_every,
            )
            sampler = venv.make_sampler(seed=sampler_seed)
            loop = TrainerLoop(agent, serial_cfg, sampler=sampler)

    listener = loop.ingest if loop is not None else None
    if listener is not None:
        venv.add_ingest_listener(listener)
    try:
        if resume_from is not None:
            # Restore before begin(): a process-backend worker must
            # fork from the restored weights and (bumped) epoch.
            start, total, digest = restore_session_state(
                resume_from,
                venv,
                agent=agent,
                loop=loop,
                sampler=sampler,
                bump_epoch=(
                    loop is not None and loop.config.backend == "process"
                ),
            )
            total = max(total, n_ticks)
        else:
            start, total, digest = 0, n_ticks, RolloutDigest()
        target = total if stop_at is None else min(stop_at, total)
        if target < start:
            raise SnapshotError(
                f"cannot run to tick {target}: snapshot is already at "
                f"tick {start} (pick an earlier snapshot)"
            )
        rewards = np.empty((venv.n_envs, target - start))
        snapshots: List[Path] = []

        def write_snapshot(done: int) -> None:
            Path(snapshot_dir).mkdir(parents=True, exist_ok=True)
            snap = build_session_snapshot(
                venv,
                done,
                total,
                digest,
                agent=agent,
                loop=loop,
                sampler=sampler,
                session_extra=session_extra,
            )
            snapshots.append(snap.save(snapshot_path(snapshot_dir, done)))

        if loop is not None:
            loop.begin()
        try:
            if resume_from is None:
                # Reset after the tap attaches so warm-up records reach
                # the trainer's mirror cache too (train_collect's rule).
                venv.reset()
            done = start
            while done < target:
                upto = target
                if snapshot_every is not None:
                    boundary = (done // snapshot_every + 1) * snapshot_every
                    upto = min(upto, boundary)
                while done < upto:
                    k = min(chunk, upto - done)
                    block = venv.collect(k, chunk=k)
                    rewards[:, done - start : done - start + k] = block
                    digest.update(block)
                    if loop is not None:
                        loop.notify_ticks(k)
                    done += k
                if snapshot_every is not None and done % snapshot_every == 0:
                    write_snapshot(done)
            if loop is not None:
                loop.drain()
        finally:
            if loop is not None:
                loop.stop()
    finally:
        if listener is not None:
            venv.remove_ingest_listener(listener)
    return CollectOutcome(
        rewards=rewards,
        digest=digest,
        start_tick=start,
        total_ticks=total,
        snapshots=snapshots,
        trainer_stats=loop.stats if loop is not None else None,
    )
