"""The untuned baseline: default parameter values, measured.

Every figure in the paper compares against "Baseline uses default
Lustre settings"; this tuner simply measures that configuration so the
comparison harness can treat all conditions uniformly.
"""

from __future__ import annotations

from repro.baselines.base import BaselineTuner, TuneResult
from repro.util.validation import check_positive


class StaticBaseline(BaselineTuner):
    """Measures the defaults; performs no search."""

    name = "static-default"

    def tune(self, budget: int = 1) -> TuneResult:
        """``budget`` repeated measurements of the default setting."""
        check_positive("budget", budget)
        defaults = self.env.action_space.defaults()
        for _ in range(budget):
            self.measure(defaults)
        return self._result()
