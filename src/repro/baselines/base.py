"""Shared machinery for search-based tuners.

A baseline evaluates candidate parameter assignments by applying them
to the live environment and measuring the mean objective over an epoch
of ticks — the "tweak-benchmark cycle" the paper's introduction wants
to automate away.  Measurements happen on the same running system in
sequence, so noise is real and search algorithms must cope, just like
their real-world counterparts.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.actions import TunableParameter
from repro.env.protocol import Environment
from repro.util.rng import ensure_rng
from repro.util.validation import check_positive

Params = Dict[str, float]


@dataclass
class TuneResult:
    """Outcome of a search: best setting, its score, and the full trace."""

    best_params: Params
    best_score: float
    evaluations: List[Tuple[Params, float]] = field(default_factory=list)

    @property
    def n_evaluations(self) -> int:
        return len(self.evaluations)


class BaselineTuner(abc.ABC):
    """Black-box search over the environment's tunable parameters."""

    name: str = "baseline"

    def __init__(
        self,
        env: Environment,
        epoch_ticks: int = 60,
        seed: int = 0,
    ):
        check_positive("epoch_ticks", epoch_ticks)
        self.env = env
        self.epoch_ticks = int(epoch_ticks)
        self.rng = ensure_rng(seed)
        self._trace: List[Tuple[Params, float]] = []

    @property
    def parameters(self) -> List[TunableParameter]:
        return self.env.action_space.parameters

    def measure(self, params: Params) -> float:
        """Apply ``params`` and return the mean objective over one epoch."""
        if not self.env.is_started:
            self.env.reset()
        self.env.set_params(params)
        rewards = self.env.run_ticks(self.epoch_ticks)
        score = float(np.mean(rewards))
        self._trace.append((dict(params), score))
        return score

    def _quantize(self, params: Params) -> Params:
        """Snap each value onto its parameter's step grid, clamped."""
        out: Params = {}
        for p in self.parameters:
            v = params[p.name]
            snapped = p.low + round((v - p.low) / p.step) * p.step
            out[p.name] = p.clamp(snapped)
        return out

    def _random_params(self) -> Params:
        return self._quantize(
            {
                p.name: float(self.rng.uniform(p.low, p.high))
                for p in self.parameters
            }
        )

    @abc.abstractmethod
    def tune(self, budget: int) -> TuneResult:
        """Spend ``budget`` epoch evaluations; return the best found."""

    def _result(self) -> TuneResult:
        if not self._trace:
            raise RuntimeError("tune() has not evaluated anything")
        best_params, best_score = max(self._trace, key=lambda t: t[1])
        return TuneResult(
            best_params=dict(best_params),
            best_score=best_score,
            evaluations=list(self._trace),
        )
