"""(μ+λ) evolution strategy over the parameter box (§5's "evolutionary
algorithms", cf. Saboori et al., ICDCS '08).

A small real-valued ES: keep the μ best settings seen, breed λ children
by Gaussian mutation (σ a fraction of each parameter's range, decayed
each generation), evaluate, and select the best μ of parents+children.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.baselines.base import BaselineTuner, Params, TuneResult
from repro.util.validation import check_in_range, check_positive


class EvolutionStrategy(BaselineTuner):
    """(μ+λ)-ES with per-parameter Gaussian mutation."""

    name = "evolution-strategy"

    def __init__(
        self,
        env,
        epoch_ticks: int = 60,
        seed: int = 0,
        mu: int = 3,
        lam: int = 6,
        sigma_fraction: float = 0.25,
        sigma_decay: float = 0.8,
    ):
        super().__init__(env, epoch_ticks, seed)
        check_positive("mu", mu)
        check_positive("lam", lam)
        check_in_range("sigma_fraction", sigma_fraction, 0.0, 1.0, low_inclusive=False)
        check_in_range("sigma_decay", sigma_decay, 0.0, 1.0, low_inclusive=False)
        self.mu = int(mu)
        self.lam = int(lam)
        self.sigma_fraction = float(sigma_fraction)
        self.sigma_decay = float(sigma_decay)

    def _mutate(self, parent: Params, sigma_frac: float) -> Params:
        child: Params = {}
        for p in self.parameters:
            sigma = sigma_frac * (p.high - p.low)
            child[p.name] = parent[p.name] + float(self.rng.normal(0.0, sigma))
        return self._quantize(child)

    def tune(self, budget: int) -> TuneResult:
        check_positive("budget", budget)
        # Initial population: the defaults plus random draws.
        population: List[Tuple[Params, float]] = []
        spent = 0
        seeds = [self.env.action_space.defaults()] + [
            self._random_params() for _ in range(self.mu - 1)
        ]
        for params in seeds:
            if spent >= budget:
                break
            population.append((params, self.measure(params)))
            spent += 1
        sigma_frac = self.sigma_fraction
        while spent < budget:
            population.sort(key=lambda t: t[1], reverse=True)
            parents = population[: self.mu]
            children: List[Tuple[Params, float]] = []
            for k in range(self.lam):
                if spent >= budget:
                    break
                parent = parents[k % len(parents)][0]
                child = self._mutate(parent, sigma_frac)
                children.append((child, self.measure(child)))
                spent += 1
            population = parents + children
            sigma_frac *= self.sigma_decay
        return self._result()
