"""Coordinate hill climbing with adaptive step multiplier.

Classic tweak-benchmark search (§5's "hill climbing"): from the current
setting, try ±k·step moves on each parameter in turn, move to the first
improvement; when a full sweep yields no improvement, halve the
multiplier; stop when the multiplier reaches 1 and a sweep fails (or
the budget runs out).  Measurement noise makes strict improvement a
noisy comparison — exactly the fragility the paper attributes to
search-based tuners.
"""

from __future__ import annotations

from repro.baselines.base import BaselineTuner, Params, TuneResult
from repro.util.validation import check_positive


class HillClimb(BaselineTuner):
    """Greedy coordinate ascent from the default setting."""

    name = "hill-climb"

    def __init__(self, env, epoch_ticks: int = 60, seed: int = 0, initial_multiplier: int = 8):
        super().__init__(env, epoch_ticks, seed)
        check_positive("initial_multiplier", initial_multiplier)
        self.initial_multiplier = int(initial_multiplier)

    def tune(self, budget: int) -> TuneResult:
        check_positive("budget", budget)
        current: Params = self.env.action_space.defaults()
        current_score = self.measure(current)
        spent = 1
        multiplier = self.initial_multiplier
        while spent < budget and multiplier >= 1:
            improved = False
            for p in self.parameters:
                for direction in (+1, -1):
                    if spent >= budget:
                        break
                    candidate = dict(current)
                    candidate[p.name] = p.clamp(
                        candidate[p.name] + direction * multiplier * p.step
                    )
                    candidate = self._quantize(candidate)
                    if candidate == current:
                        continue
                    score = self.measure(candidate)
                    spent += 1
                    if score > current_score:
                        current, current_score = candidate, score
                        improved = True
                        break  # restart sweep from the better point
                if improved or spent >= budget:
                    break
            if not improved:
                multiplier //= 2
        return self._result()
