"""Search-based automatic tuning baselines (related work, §5).

The paper positions CAPES against "model-less, general purpose
approaches [that] treat the target system as a black box with knobs and
adopt a certain search algorithm, such as hill climbing or evolutionary
algorithms".  These comparators drive the same
:class:`~repro.env.tuning_env.StorageTuningEnv` as CAPES:

- :class:`~repro.baselines.static.StaticBaseline` — default Lustre
  settings (the paper's baseline bars);
- :class:`~repro.baselines.random_search.RandomSearch`;
- :class:`~repro.baselines.hill_climb.HillClimb` — coordinate ascent;
- :class:`~repro.baselines.evolution.EvolutionStrategy` — a (μ+λ)-ES.

All are *one-time* search processes: they find a static setting for the
current workload, exactly the inflexibility §5 attributes to them.
"""

from repro.baselines.base import BaselineTuner, TuneResult
from repro.baselines.evolution import EvolutionStrategy
from repro.baselines.hill_climb import HillClimb
from repro.baselines.random_search import RandomSearch
from repro.baselines.static import StaticBaseline

__all__ = [
    "BaselineTuner",
    "TuneResult",
    "StaticBaseline",
    "RandomSearch",
    "HillClimb",
    "EvolutionStrategy",
]
