"""Uniform random search over the parameter box.

The simplest black-box comparator: draw settings uniformly from each
parameter's valid range (snapped to its step grid), measure each for an
epoch, keep the best.  Surprisingly strong in low dimension, and a good
noise floor for judging the other tuners.
"""

from __future__ import annotations

from repro.baselines.base import BaselineTuner, TuneResult
from repro.util.validation import check_positive


class RandomSearch(BaselineTuner):
    """Independent uniform draws; no structure exploited."""

    name = "random-search"

    def tune(self, budget: int) -> TuneResult:
        check_positive("budget", budget)
        # Measure the defaults first so the search never reports a
        # regression against doing nothing.
        self.measure(self.env.action_space.defaults())
        for _ in range(max(0, budget - 1)):
            self.measure(self._random_params())
        return self._result()
