"""Setup shim: this offline environment lacks the `wheel` package, so
`pip install -e .` (PEP 660) cannot build; `python setup.py develop`
provides the equivalent editable install using setuptools alone."""
from setuptools import setup

setup()
