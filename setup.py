"""Legacy-install shim.  All project metadata lives in pyproject.toml
(PEP 621); setuptools >= 61 reads it from there.  This file exists only
because the offline environment lacks the `wheel` package, so
`pip install -e .` (PEP 660) cannot build; `python setup.py develop`
provides the equivalent editable install using setuptools alone."""
from setuptools import setup

setup()
