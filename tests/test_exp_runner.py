"""Tests for the experiment orchestration layer (repro.exp).

The layer's contract: a run is a pure function of its spec.  The same
grid executed serially and with worker processes must yield
byte-identical per-seed results, the tuner registry must round-trip
every name, and JSONL artifacts must rehydrate.
"""

import json

import numpy as np
import pytest

from repro.cluster import ClusterConfig
from repro.exp import (
    ExperimentRunner,
    ExperimentSpec,
    RunBudget,
    RunResult,
    WorkloadSpec,
    execute_spec,
    grid,
    load_artifacts,
    make_tuner,
    tuner_names,
    workload_names,
)
from repro.rl import Hyperparameters

TINY_HP = Hyperparameters(
    hidden_layer_size=8,
    exploration_ticks=20,
    sampling_ticks_per_observation=3,
)


def tiny_spec(**overrides) -> ExperimentSpec:
    defaults = dict(
        cluster=ClusterConfig(n_servers=2, n_clients=2),
        workload=WorkloadSpec(
            "random_rw", {"read_fraction": 0.1, "instances_per_client": 2}
        ),
        hp=TINY_HP,
        budget=RunBudget(train_ticks=6, eval_ticks=4, epoch_ticks=3),
    )
    defaults.update(overrides)
    return ExperimentSpec(**defaults)


class TestRegistry:
    def test_expected_tuners_registered(self):
        assert tuner_names() == [
            "capes",
            "evolution",
            "hill_climb",
            "random",
            "static",
        ]

    def test_round_trips_every_name(self):
        for name in tuner_names():
            tuner = make_tuner(name, seed=0)
            assert tuner.name == name
            assert callable(tuner.run)

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError, match="unknown tuner"):
            make_tuner("annealing")

    def test_workload_registry(self):
        assert set(workload_names()) >= {"random_rw", "fileserver", "seqwrite"}
        with pytest.raises(KeyError, match="unknown workload"):
            WorkloadSpec("bonnie")


class TestSpec:
    def test_grid_expansion_order_and_ids(self):
        specs = grid(tiny_spec(), tuners=["capes", "static"], seeds=[0, 1, 2])
        assert len(specs) == 6
        assert [s.spec_id for s in specs[:3]] == [
            "random_rw/capes/seed0",
            "random_rw/capes/seed1",
            "random_rw/capes/seed2",
        ]
        assert specs[3].tuner == "static"

    def test_grid_per_tuner_kwargs_overlay(self):
        specs = grid(
            tiny_spec(tuner_kwargs={"seed": 5}),
            tuners=["capes", "static"],
            seeds=[0],
            tuner_kwargs={"capes": {"loss": "huber"}},
        )
        assert specs[0].tuner_kwargs == {"seed": 5, "loss": "huber"}
        assert specs[1].tuner_kwargs == {"seed": 5}
        # Grids must not share mutable kwargs dicts.
        specs[0].tuner_kwargs["loss"] = "mse"
        assert specs[1].tuner_kwargs == {"seed": 5}

    def test_spec_is_picklable(self):
        import pickle

        spec = tiny_spec()
        clone = pickle.loads(pickle.dumps(spec))
        assert clone.workload == spec.workload
        assert clone.budget == spec.budget

    def test_to_dict_is_json_able(self):
        d = tiny_spec(tuner="random").to_dict()
        json.dumps(d)
        assert d["spec_id"] == "random_rw/random/seed0"

    def test_budget_normalizes_int(self):
        assert RunBudget(train_ticks=10).segments == (10,)
        assert RunBudget(train_ticks=(5, 5)).total_train_ticks == 10
        with pytest.raises(ValueError):
            RunBudget(train_ticks=0)


class TestExecution:
    def test_every_tuner_runs_end_to_end(self):
        for name in tuner_names():
            result = execute_spec(tiny_spec(tuner=name))
            assert result.tuner == name
            assert len(result.phases) == 1
            final = result.final
            assert final.baseline_rewards.shape == (4,)
            assert final.tuned_rewards.shape == (4,)
            assert final.final_params

    def test_multi_checkpoint_budget(self):
        spec = tiny_spec(budget=RunBudget(train_ticks=(6, 4), eval_ticks=4))
        result = execute_spec(spec)
        assert [p.trained_ticks for p in result.phases] == [6, 10]

    def test_result_dict_round_trip(self):
        result = execute_spec(tiny_spec(tuner="static"))
        clone = RunResult.from_dict(result.to_dict())
        assert json.dumps(clone.to_dict(), sort_keys=True) == json.dumps(
            result.to_dict(), sort_keys=True
        )


class TestRunnerDeterminism:
    def _grid(self):
        return grid(tiny_spec(), tuners=["capes", "static"], seeds=[0, 1, 2])

    @pytest.mark.slow
    def test_serial_and_parallel_results_byte_identical(self, tmp_path):
        specs = self._grid()
        serial = ExperimentRunner(jobs=1, artifacts_dir=tmp_path / "s").run(
            specs
        )
        parallel = ExperimentRunner(jobs=2, artifacts_dir=tmp_path / "p").run(
            specs
        )
        assert len(serial) == len(parallel) == len(specs)
        for a, b in zip(serial.results, parallel.results):
            assert json.dumps(a.to_dict(), sort_keys=True) == json.dumps(
                b.to_dict(), sort_keys=True
            )

    def test_rerun_is_deterministic(self):
        spec = tiny_spec(tuner="capes", seed=7)
        a, b = execute_spec(spec), execute_spec(spec)
        assert np.array_equal(a.final.tuned_rewards, b.final.tuned_rewards)
        assert np.array_equal(
            a.final.baseline_rewards, b.final.baseline_rewards
        )


class TestArtifactsAndSummary:
    def test_jsonl_streaming_and_reload(self, tmp_path):
        specs = grid(tiny_spec(), tuners=["static"], seeds=[0, 1])
        results = ExperimentRunner(jobs=1, artifacts_dir=tmp_path).run(specs)
        lines = load_artifacts(tmp_path / "runs.jsonl")
        assert [d["index"] for d in lines] == [0, 1]
        for line, record in zip(lines, results):
            rehydrated = RunResult.from_dict(line["result"])
            assert np.array_equal(
                rehydrated.final.tuned_rewards,
                record.result.final.tuned_rewards,
            )
            assert line["spec"]["spec_id"] == record.spec.spec_id
            assert line["duration_s"] > 0

    def test_summary_groups_by_scenario_and_tuner(self):
        specs = grid(tiny_spec(), tuners=["capes", "static"], seeds=[0, 1])
        results = ExperimentRunner().run(specs)
        rows = results.summarize()
        assert [(r.tuner, r.n_seeds) for r in rows] == [
            ("capes", 2),
            ("static", 2),
        ]
        for row in rows:
            assert row.tuned_ci_low <= row.tuned_mean <= row.tuned_ci_high
        table = results.format_table(unit_scale=100.0, unit=" MB/s")
        assert "capes" in table and "static" in table

    def test_empty_run(self):
        results = ExperimentRunner().run([])
        assert len(results) == 0
        assert results.summarize() == []
