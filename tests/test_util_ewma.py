"""Tests for repro.util.ewma."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util import EWMA, IrregularEWMA


class TestEWMA:
    def test_first_sample_seeds_mean_exactly(self):
        e = EWMA(alpha=0.3)
        assert e.update(7.0) == 7.0
        assert e.value == 7.0

    def test_update_formula(self):
        e = EWMA(alpha=0.5, initial=0.0)
        assert e.update(10.0) == pytest.approx(5.0)
        assert e.update(10.0) == pytest.approx(7.5)

    def test_alpha_one_tracks_last_value(self):
        e = EWMA(alpha=1.0)
        e.update(3.0)
        e.update(-2.0)
        assert e.value == -2.0

    def test_value_before_any_observation_is_zero(self):
        assert EWMA(alpha=0.2).value == 0.0

    def test_count_tracks_updates(self):
        e = EWMA(alpha=0.2)
        for i in range(5):
            e.update(float(i))
        assert e.count == 5

    def test_initial_seeds_mean_but_not_count(self):
        # A seed is a prior, not an observation: count-gated warm-up
        # logic must see a seeded-but-empty average as "no data yet".
        e = EWMA(alpha=0.2, initial=1.0)
        assert e.count == 0
        assert e.value == 1.0
        e.update(3.0)
        assert e.count == 1

    def test_reset(self):
        e = EWMA(alpha=0.2)
        e.update(5.0)
        e.reset()
        assert e.count == 0
        assert e.value == 0.0

    @pytest.mark.parametrize("alpha", [0.0, -0.1, 1.5])
    def test_invalid_alpha_rejected(self, alpha):
        with pytest.raises(ValueError):
            EWMA(alpha=alpha)

    @given(
        alpha=st.floats(min_value=0.01, max_value=1.0),
        xs=st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50),
    )
    def test_mean_stays_within_sample_hull(self, alpha, xs):
        """Property: an EWMA is a convex combination of its inputs."""
        e = EWMA(alpha=alpha)
        for x in xs:
            e.update(x)
        assert min(xs) - 1e-6 <= e.value <= max(xs) + 1e-6

    @given(xs=st.lists(st.floats(min_value=-100, max_value=100), min_size=2, max_size=30))
    def test_constant_input_is_fixed_point(self, xs):
        e = EWMA(alpha=0.37)
        for _ in xs:
            e.update(42.0)
        assert e.value == pytest.approx(42.0)


class TestIrregularEWMA:
    def test_first_sample_seeds_mean(self):
        e = IrregularEWMA(tau=1.0)
        assert e.update(0.0, 5.0) == 5.0

    def test_matches_fixed_weight_for_even_spacing(self):
        tau, period = 2.0, 1.0
        alpha = 1.0 - math.exp(-period / tau)
        irr = IrregularEWMA(tau=tau)
        fix = EWMA(alpha=alpha)
        rng = np.random.default_rng(0)
        xs = rng.normal(size=40)
        t = 0.0
        for x in xs:
            irr.update(t, float(x))
            fix.update(float(x))
            t += period
        assert irr.value == pytest.approx(fix.value, rel=1e-9)

    def test_long_gap_converges_to_new_sample(self):
        e = IrregularEWMA(tau=0.5)
        e.update(0.0, 100.0)
        e.update(1000.0, 1.0)
        assert e.value == pytest.approx(1.0, abs=1e-6)

    def test_zero_gap_leaves_mean_unchanged(self):
        e = IrregularEWMA(tau=1.0)
        e.update(1.0, 10.0)
        e.update(1.0, 999.0)  # dt == 0 -> weight 0
        assert e.value == pytest.approx(10.0)

    def test_out_of_order_samples_rejected(self):
        e = IrregularEWMA(tau=1.0)
        e.update(5.0, 1.0)
        with pytest.raises(ValueError):
            e.update(4.0, 2.0)

    def test_invalid_tau_rejected(self):
        with pytest.raises(ValueError):
            IrregularEWMA(tau=0.0)

    def test_reset(self):
        e = IrregularEWMA(tau=1.0)
        e.update(0.0, 3.0)
        e.reset()
        assert e.count == 0
        e.update(0.0, 8.0)  # time may restart after reset
        assert e.value == 8.0
