"""Tests for the Pilot-style statistics pipeline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats import (
    analyze,
    autocorrelation,
    compare_measurements,
    detect_changepoint,
    mean_ci,
    percent_change,
    subsession_merge,
    trim_warmup_cooldown,
)


class TestAutocorrelation:
    def test_iid_noise_near_zero(self):
        x = np.random.default_rng(0).normal(size=5000)
        assert abs(autocorrelation(x)) < 0.05

    def test_alternating_is_negative(self):
        x = np.array([1.0, -1.0] * 50)
        assert autocorrelation(x) < -0.9

    def test_smooth_trend_is_positive(self):
        x = np.linspace(0, 1, 200)
        assert autocorrelation(x) > 0.9

    def test_constant_series_zero(self):
        assert autocorrelation(np.ones(50)) == 0.0

    def test_short_series_zero(self):
        assert autocorrelation(np.array([1.0, 2.0])) == 0.0

    def test_bad_lag(self):
        with pytest.raises(ValueError):
            autocorrelation(np.ones(10), lag=0)

    def test_lag_parameter(self):
        # period-2 signal: lag-2 autocorrelation is positive
        x = np.array([1.0, -1.0] * 50)
        assert autocorrelation(x, lag=2) > 0.9


class TestSubsessionMerge:
    def test_correlated_series_gets_merged(self):
        rng = np.random.default_rng(1)
        # AR(1) with strong correlation
        x = np.zeros(4096)
        for i in range(1, x.size):
            x[i] = 0.95 * x[i - 1] + rng.normal()
        merged, rounds = subsession_merge(x, threshold=0.1)
        assert rounds >= 1
        assert abs(autocorrelation(merged)) <= 0.1 or merged.size <= 8

    def test_iid_series_untouched(self):
        x = np.random.default_rng(2).normal(size=1000)
        merged, rounds = subsession_merge(x)
        assert rounds == 0
        assert merged.size == 1000

    def test_never_below_min_samples(self):
        x = np.linspace(0, 1, 64)  # highly autocorrelated
        merged, _rounds = subsession_merge(x, min_samples=4)
        assert merged.size >= 4

    def test_merge_preserves_mean(self):
        x = np.sin(np.linspace(0, 20, 512)) + 5.0
        merged, _ = subsession_merge(x)
        assert merged.mean() == pytest.approx(x[: (x.size // 2) * 2].mean(), rel=0.05)


class TestMeanCI:
    def test_matches_scipy_t(self):
        x = np.random.default_rng(3).normal(10.0, 2.0, size=50)
        mean, half = mean_ci(x, 0.95)
        assert mean == pytest.approx(x.mean())
        from scipy import stats as sps

        sem = x.std(ddof=1) / np.sqrt(50)
        expect = sps.t.ppf(0.975, 49) * sem
        assert half == pytest.approx(expect)

    def test_single_sample_infinite(self):
        _m, half = mean_ci(np.array([1.0]))
        assert half == float("inf")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_ci(np.array([]))

    def test_ci_shrinks_with_n(self):
        rng = np.random.default_rng(4)
        _m1, h1 = mean_ci(rng.normal(size=20))
        _m2, h2 = mean_ci(rng.normal(size=2000))
        assert h2 < h1

    @given(n=st.integers(min_value=2, max_value=200))
    @settings(deadline=None)
    def test_true_mean_usually_inside(self, n):
        # smoke property: CI contains the sample mean trivially
        x = np.random.default_rng(n).normal(size=n)
        mean, half = mean_ci(x)
        assert mean - half <= x.mean() <= mean + half


class TestChangepoint:
    def test_detects_obvious_shift(self):
        x = np.concatenate([np.zeros(100), np.ones(100)])
        x += np.random.default_rng(0).normal(0, 0.1, size=200)
        k, stat = detect_changepoint(x)
        assert k is not None
        assert 90 <= k <= 110

    def test_no_shift_detected_in_noise(self):
        x = np.random.default_rng(1).normal(size=400)
        k, _stat = detect_changepoint(x)
        assert k is None

    def test_constant_series_none(self):
        k, stat = detect_changepoint(np.ones(100))
        assert k is None and stat == 0.0

    def test_short_series_none(self):
        assert detect_changepoint(np.ones(4))[0] is None

    def test_trim_removes_warmup(self):
        rng = np.random.default_rng(2)
        warm = np.linspace(0, 10, 60) + rng.normal(0, 0.3, 60)
        steady = 10.0 + rng.normal(0, 0.3, 400)
        x = np.concatenate([warm, steady])
        core, lo, hi = trim_warmup_cooldown(x)
        assert lo >= 30  # most of the ramp removed
        assert hi == x.size
        assert core.mean() == pytest.approx(10.0, abs=0.5)

    def test_trim_removes_cooldown(self):
        rng = np.random.default_rng(3)
        steady = 5.0 + rng.normal(0, 0.2, 400)
        cool = np.linspace(5, 0, 60) + rng.normal(0, 0.2, 60)
        x = np.concatenate([steady, cool])
        core, lo, hi = trim_warmup_cooldown(x)
        assert lo == 0
        assert hi <= 430
        assert core.mean() == pytest.approx(5.0, abs=0.3)

    def test_interior_shift_left_alone(self):
        rng = np.random.default_rng(4)
        x = np.concatenate(
            [rng.normal(0, 0.1, 200), rng.normal(5, 0.1, 200)]
        )
        core, lo, hi = trim_warmup_cooldown(x)
        assert lo == 0 and hi == x.size  # 50/50 split is signal, not warm-up

    def test_bad_fraction(self):
        with pytest.raises(ValueError):
            trim_warmup_cooldown(np.ones(100), max_trim_fraction=0.6)


class TestAnalyze:
    def test_full_pipeline_on_noisy_plateau(self):
        rng = np.random.default_rng(5)
        x = np.concatenate(
            [np.linspace(0, 8, 50), 8.0 + rng.normal(0, 0.5, 600)]
        )
        s = analyze(x)
        assert s.mean == pytest.approx(8.0, abs=0.2)
        assert s.ci_halfwidth < 0.5
        assert s.trimmed_prefix > 20
        assert abs(s.autocorr_final) <= 0.1 or s.n_effective <= 8

    def test_summary_fields(self):
        s = analyze(np.random.default_rng(6).normal(3.0, 1.0, 200))
        assert s.n_raw == 200
        lo, hi = s.ci
        assert lo < s.mean < hi
        assert "95%" in str(s)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            analyze(np.array([]))


class TestComparisons:
    def test_percent_change(self):
        assert percent_change(100.0, 145.0) == pytest.approx(45.0)
        assert percent_change(200.0, 100.0) == pytest.approx(-50.0)
        with pytest.raises(ZeroDivisionError):
            percent_change(0.0, 1.0)

    def test_clear_improvement_significant(self):
        rng = np.random.default_rng(7)
        base = rng.normal(10.0, 1.0, 300)
        tuned = rng.normal(14.5, 1.0, 300)
        c = compare_measurements(base, tuned, trim=False)
        assert c.significant
        assert c.percent == pytest.approx(45.0, abs=5.0)

    def test_identical_distributions_not_significant(self):
        rng = np.random.default_rng(8)
        base = rng.normal(10.0, 1.0, 200)
        tuned = rng.normal(10.0, 1.0, 200)
        c = compare_measurements(base, tuned, trim=False)
        assert not c.significant

    def test_zero_variance_equal(self):
        c = compare_measurements(np.ones(50), np.ones(50), trim=False)
        assert not c.significant
