"""Behavioural contract of the vectorized fleet engine (repro.sim.vec).

The fleet backend is a *different physics* from the reference
discrete-event cluster (a fluid tick model), so these tests pin the
parts of the contract that must be identical anyway: the Environment
surface semantics (``run_chunk`` edge cases, action-to-record
attachment, parameter setters) on **both** backends, chunked-vs-
per-tick equivalence on the vec backend, and the ``VectorEnv``
integration path (``backend="vec"``).
"""

import numpy as np
import pytest

from repro.cluster import ClusterConfig
from repro.env import VectorEnv, make_env
from repro.env.registry import _default_workload
from repro.rl import Hyperparameters
from repro.sim.vec import FleetEnv

SEED = 17

HP = Hyperparameters(
    hidden_layer_size=8,
    exploration_ticks=20,
    sampling_ticks_per_observation=3,
)
ENV_KW = dict(
    cluster=ClusterConfig(n_servers=2, n_clients=2),
    hp=HP,
    workload_factory=_default_workload,
)

BACKENDS = ["sim-lustre", "sim-lustre-vec"]


def _make_scalar(name):
    """A scalar Environment on either backend (vec → its slot 0)."""
    env = make_env(name, seed=SEED, **ENV_KW)
    if isinstance(env, FleetEnv):
        return env.slot(0)
    return env


# -- run_chunk edge cases, both backends --------------------------------


@pytest.mark.parametrize("name", BACKENDS)
def test_run_chunk_zero_is_empty_without_advancing(name):
    env = _make_scalar(name)
    try:
        env.reset()
        before = env.records_since_packed(0)
        obs_before = np.array(env.current_observation(), copy=True)
        rewards = env.run_chunk(0)
        assert rewards.shape == (0,)
        after = env.records_since_packed(0)
        np.testing.assert_array_equal(after.ticks, before.ticks)
        np.testing.assert_array_equal(env.current_observation(), obs_before)
    finally:
        env.close()


@pytest.mark.parametrize("name", BACKENDS)
def test_run_chunk_negative_k_raises(name):
    env = _make_scalar(name)
    try:
        env.reset()
        with pytest.raises(ValueError, match="k must be >= 0"):
            env.run_chunk(-1)
    finally:
        env.close()


def test_fleet_run_chunk_zero_and_negative():
    """The batched fleet surface honours the same edge cases."""
    fleet = make_env("sim-lustre-vec", seed=SEED, n_envs=3, **ENV_KW)
    try:
        fleet.reset()
        tick_before = fleet.state.tick.copy()
        rewards = fleet.run_chunk(0)
        assert rewards.shape == (3, 0)
        np.testing.assert_array_equal(fleet.state.tick, tick_before)
        with pytest.raises(ValueError, match="k must be >= 0"):
            fleet.run_chunk(-2)
    finally:
        fleet.close()


@pytest.mark.parametrize("name", BACKENDS)
def test_action_changes_between_chunks_land_on_right_tick(name):
    """An action passed to ``run_chunk`` is decided *before* each tick,
    so it attaches to the record of the tick current at decision time —
    switching actions between chunks must show the switch exactly at
    the chunk boundary, identically on both backends."""
    env = _make_scalar(name)
    try:
        env.reset()
        warm = env.records_since_packed(0)
        t0 = int(warm.ticks[-1])
        assert set(warm.actions) == {-1}  # warm-up is monitoring-only
        a1, a2 = 1, 2
        env.run_chunk(3, action=a1)
        env.run_chunk(2, action=a2)
        recs = env.records_since_packed(0)
        np.testing.assert_array_equal(recs.ticks, np.arange(1, t0 + 6))
        tail = list(recs.actions[-6:])
        # a1 on the tick current when each of chunk 1's three decisions
        # fired (t0, t0+1, t0+2), a2 on chunk 2's (t0+3, t0+4); the
        # newest tick's record has no action yet.
        assert tail == [a1, a1, a1, a2, a2, -1]
    finally:
        env.close()


def test_chunked_matches_per_tick_on_vec():
    """One ``run_chunk`` call is byte-identical to the per-tick loop it
    abbreviates — rewards, records and the post-chunk observation."""
    a = 1
    loop = make_env("sim-lustre-vec", seed=SEED, n_envs=2, **ENV_KW)
    chunked = make_env("sim-lustre-vec", seed=SEED, n_envs=2, **ENV_KW)
    try:
        loop.reset()
        chunked.reset()
        loop_rewards = []
        for _ in range(10):
            _obs, rewards, _infos = loop.step([a, a])
            loop_rewards.append(rewards.copy())
        loop_rewards = np.stack(loop_rewards, axis=1)
        parts = [
            chunked.run_chunk(4, action=a),
            chunked.run_chunk(0),
            chunked.run_chunk(6, action=a),
        ]
        chunk_rewards = np.concatenate(parts, axis=1)
        np.testing.assert_array_equal(chunk_rewards, loop_rewards)
        for e in range(2):
            lr = loop.records_since_packed(0, env_index=e)
            cr = chunked.records_since_packed(0, env_index=e)
            np.testing.assert_array_equal(lr.ticks, cr.ticks)
            np.testing.assert_array_equal(lr.actions, cr.actions)
            np.testing.assert_array_equal(lr.rewards, cr.rewards)
            np.testing.assert_array_equal(lr.frames, cr.frames)
        np.testing.assert_array_equal(
            loop.current_observation(), chunked.current_observation()
        )
    finally:
        loop.close()
        chunked.close()


# -- fleet/slot coherence ----------------------------------------------


def test_fleet_slot_views_shared_rows():
    fleet = make_env("sim-lustre-vec", seed=SEED, n_envs=3, **ENV_KW)
    try:
        obs = fleet.reset()
        assert obs.shape == (3, fleet.obs_dim)
        batch_obs, rewards, infos = fleet.step([0, 1, 2])
        assert rewards.shape == (3,)
        for e in range(3):
            slot = fleet.slot(e)
            np.testing.assert_array_equal(
                slot.current_observation(), batch_obs[e]
            )
            assert infos[e]["params"] == slot.current_params()
    finally:
        fleet.close()


def test_set_params_semantics():
    fleet = make_env("sim-lustre-vec", seed=SEED, n_envs=2, **ENV_KW)
    try:
        fleet.reset()
        # The window knob is an integer (ControlAgent semantics), the
        # rate knob a float.
        fleet.set_params({"max_rpcs_in_flight": 9.6, "io_rate_limit": 300.0})
        assert fleet.current_params(0) == {
            "max_rpcs_in_flight": 10.0,
            "io_rate_limit": 300.0,
        }
        fleet.set_params({"max_rpcs_in_flight": 4}, env_index=1)
        assert fleet.current_params(0)["max_rpcs_in_flight"] == 10.0
        assert fleet.current_params(1)["max_rpcs_in_flight"] == 4.0
        with pytest.raises(KeyError, match="unknown tunable"):
            fleet.set_params({"not_a_knob": 1.0})
    finally:
        fleet.close()


def test_step_before_reset_raises():
    fleet = make_env("sim-lustre-vec", seed=SEED, n_envs=1, **ENV_KW)
    with pytest.raises(RuntimeError, match="reset"):
        fleet.step([0])


def test_fleet_sampler_draws_minibatches():
    fleet = make_env("sim-lustre-vec", seed=SEED, n_envs=2, **ENV_KW)
    try:
        fleet.reset()
        # NULL actions, like VectorEnv.collect: monitoring-only ticks
        # (action -1) are not eligible transitions, recorded NULLs are.
        fleet.run_chunk(12, action=0)
        mb = fleet.make_sampler(seed=0, env_index=1).sample_minibatch(4)
        assert mb.s_t.shape == (4, fleet.obs_dim)
        assert mb.s_next.shape == (4, fleet.obs_dim)
    finally:
        fleet.close()


# -- VectorEnv integration ---------------------------------------------


def test_vector_env_vec_backend_end_to_end():
    venv = VectorEnv.from_registry(
        "sim-lustre-vec",
        3,
        base_seed=SEED,
        backend="vec",
        env_kwargs=ENV_KW,
        tick_stride=256,
    )
    try:
        obs = venv.reset()
        assert obs.shape == (3, venv.obs_dim)
        obs, rewards, _infos = venv.step([0, 1, 2])
        assert obs.shape == (3, venv.obs_dim)
        assert rewards.shape == (3,)
        rw = venv.collect(6, chunk=3)
        assert rw.shape == (3, 6)
        # Shared-DB fan-in feeds the strided sampler.
        mb = venv.make_sampler(seed=3).sample_minibatch(4)
        assert mb.s_t.shape == (4, venv.obs_dim)
        # The CapesTuner checkpoint path: drive one cluster out of
        # lockstep, then resync its observation row.
        venv.env_method(0, "set_params", {"max_rpcs_in_flight": 12})
        rews = venv.env_method(0, "run_ticks", 4)
        assert rews.shape == (4,)
        venv.refresh_observation(0)
        assert venv.env_method(0, "current_params")[
            "max_rpcs_in_flight"
        ] == 12.0
        _obs, rewards, _infos = venv.step([0, 0, 0])
        assert np.isfinite(rewards).all()
    finally:
        venv.close()


def test_vec_backend_requires_one_fleet():
    fleet_a = make_env("sim-lustre-vec", seed=SEED, n_envs=2, **ENV_KW)
    fleet_b = make_env("sim-lustre-vec", seed=SEED, n_envs=2, **ENV_KW)
    factories = [lambda: fleet_a.slot(0), lambda: fleet_b.slot(1)]
    with pytest.raises(ValueError, match="one FleetEnv"):
        VectorEnv(factories, backend="vec")


def test_vec_backend_rejects_non_fleet_envs():
    factories = [lambda: make_env("sim-lustre", seed=SEED, **ENV_KW)]
    with pytest.raises(ValueError, match="one FleetEnv"):
        VectorEnv(factories, backend="vec")
