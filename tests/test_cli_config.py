"""Tests for the conf.py loader and the command-line interface."""

import numpy as np
import pytest

from repro.cli import main, make_parser
from repro.core.config import ConfigError, load_config

MINIMAL_CONF = """
from repro.workloads import RandomReadWrite

N_SERVERS = 2
N_CLIENTS = 2
HIDDEN_LAYER_SIZE = 8
SAMPLING_TICKS_PER_OBSERVATION = 3
EXPLORATION_TICKS = 20
SEED = 7

def WORKLOAD(cluster, seed):
    return RandomReadWrite(
        cluster, read_fraction=0.1, instances_per_client=2, seed=seed)
"""


@pytest.fixture
def conf_path(tmp_path):
    p = tmp_path / "conf.py"
    p.write_text(MINIMAL_CONF)
    return str(p)


class TestLoadConfig:
    def test_builds_capes_config(self, conf_path):
        cfg = load_config(conf_path)
        assert cfg.env.cluster.n_servers == 2
        assert cfg.env.cluster.n_clients == 2
        assert cfg.env.hp.hidden_layer_size == 8
        assert cfg.env.hp.sampling_ticks_per_observation == 3
        assert cfg.seed == 7
        assert callable(cfg.env.workload_factory)

    def test_defaults_fill_missing(self, conf_path):
        cfg = load_config(conf_path)
        assert cfg.env.hp.discount_rate == 0.99  # Table 1 default
        assert cfg.train_steps_per_tick == 1
        assert cfg.loss == "mse"

    def test_missing_workload_rejected(self, tmp_path):
        p = tmp_path / "conf.py"
        p.write_text("N_SERVERS = 2\n")
        with pytest.raises(ConfigError, match="WORKLOAD"):
            load_config(p)

    def test_unknown_name_rejected(self, tmp_path):
        p = tmp_path / "conf.py"
        p.write_text(
            MINIMAL_CONF + "\nMAX_RPC_IN_FLIGHT = 4  # typo: missing S\n"
        )
        with pytest.raises(ConfigError, match="MAX_RPC_IN_FLIGHT"):
            load_config(p)

    def test_nonexistent_file(self):
        with pytest.raises(ConfigError):
            load_config("/nonexistent/conf.py")

    def test_config_runs_end_to_end(self, conf_path):
        from repro.core.capes import CAPES

        capes = CAPES(load_config(conf_path))
        result = capes.train(8)
        assert result.n_ticks == 8


class TestCLI:
    def test_parser_subcommands(self):
        parser = make_parser()
        for cmd in (
            "train",
            "evaluate",
            "baseline",
            "collect",
            "sweep",
            "window-sweep",
        ):
            args = parser.parse_args([cmd, "--config", "x.py"])
            assert args.command == cmd

    def test_train_and_evaluate_roundtrip(self, conf_path, tmp_path, capsys):
        ckpt = str(tmp_path / "model.npz")
        rc = main(
            ["train", "--config", conf_path, "--ticks", "12", "--checkpoint", ckpt]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "final parameters" in out
        assert "model saved" in out

        rc = main(
            ["evaluate", "--config", conf_path, "--ticks", "6", "--checkpoint", ckpt]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "tuned throughput" in out

    def test_baseline_command(self, conf_path, capsys):
        rc = main(["baseline", "--config", conf_path, "--ticks", "6"])
        assert rc == 0
        assert "baseline throughput" in capsys.readouterr().out

    def test_collect_command_persists_replay_db(self, conf_path, tmp_path, capsys):
        out_db = str(tmp_path / "collected.sqlite")
        rc = main(
            [
                "collect",
                "--config",
                conf_path,
                "--ticks",
                "6",
                "--n-envs",
                "2",
                "--chunk",
                "3",
                "--out",
                out_db,
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "monitored throughput" in out
        assert "durable rows" in out
        # 2 envs x (3 warm-up + 6 collection) ticks, reloadable.
        from repro.replaydb import ReplayDB

        db = ReplayDB(44, path=out_db)
        assert db.record_count() == 2 * 9
        db.close()

    def test_collect_command_cache_only(self, conf_path, capsys):
        rc = main(["collect", "--config", conf_path, "--ticks", "4"])
        assert rc == 0
        assert "not persisted" in capsys.readouterr().out

    def test_collect_rejects_bad_n_envs(self, conf_path, capsys):
        rc = main(["collect", "--config", conf_path, "--n-envs", "0"])
        assert rc == 2
        assert "--n-envs" in capsys.readouterr().err

    def test_collect_rejects_bad_ticks_and_chunk(self, conf_path, capsys):
        rc = main(["collect", "--config", conf_path, "--ticks", "0"])
        assert rc == 2
        assert "--ticks" in capsys.readouterr().err
        rc = main(
            ["collect", "--config", conf_path, "--ticks", "4", "--chunk", "0"]
        )
        assert rc == 2
        assert "--chunk" in capsys.readouterr().err

    def test_collect_refuses_to_overwrite_existing_db(
        self, conf_path, tmp_path, capsys
    ):
        """The reset fence clears the shared DB, so collecting into an
        existing store would silently destroy it; the CLI must refuse."""
        out_db = tmp_path / "already.sqlite"
        out_db.write_bytes(b"not empty")
        rc = main(
            [
                "collect",
                "--config",
                conf_path,
                "--ticks",
                "4",
                "--out",
                str(out_db),
            ]
        )
        assert rc == 2
        assert "refusing to overwrite" in capsys.readouterr().err
        assert out_db.read_bytes() == b"not empty"  # untouched

    def test_window_sweep_command(self, conf_path, capsys):
        rc = main(
            [
                "window-sweep",
                "--config",
                conf_path,
                "--ticks",
                "5",
                "--settle",
                "2",
                "--window",
                "4,8",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "best window" in out

    def test_sweep_command(self, conf_path, tmp_path, capsys):
        art = str(tmp_path / "artifacts")
        rc = main(
            [
                "sweep",
                "--config",
                conf_path,
                "--tuners",
                "capes,static",
                "--seeds",
                "0-1",
                "--train-ticks",
                "6",
                "--eval-ticks",
                "4",
                "--epoch-ticks",
                "3",
                "--artifacts",
                art,
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "capes" in out and "static" in out
        assert (tmp_path / "artifacts" / "runs.jsonl").exists()

    def test_sweep_with_scenario_and_vector_envs(self, conf_path, capsys):
        """Acceptance: `repro sweep --scenario NAME --n-envs 4` runs
        end-to-end with the perturbation timeline actually firing
        inside the (compressed) training window."""
        rc = main(
            [
                "sweep",
                "--config",
                conf_path,
                "--tuners",
                "capes",
                "--seeds",
                "0",
                "--scenario",
                "sim-lustre-bursty",
                "--scenario-kwargs",
                '{"first_tick": 4, "period": 5, "n_bursts": 2,'
                ' "duration": 2}',
                "--n-envs",
                "4",
                "--train-ticks",
                "6",
                "--eval-ticks",
                "4",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "perturbation timeline attached" in out
        assert "sim-lustre-bursty" in out

    def test_sweep_rejects_bad_scenario_kwargs(self, conf_path, capsys):
        rc = main(
            [
                "sweep",
                "--config",
                conf_path,
                "--scenario-kwargs",
                "{not json",
            ]
        )
        assert rc == 2
        assert "bad --scenario-kwargs" in capsys.readouterr().err

    def test_sweep_rejects_non_object_scenario_kwargs(self, conf_path, capsys):
        rc = main(
            ["sweep", "--config", conf_path, "--scenario-kwargs", "[1, 2]"]
        )
        assert rc == 2
        assert "expected a JSON object" in capsys.readouterr().err

    def test_sweep_rejects_scenario_kwarg_typo_eagerly(self, conf_path, capsys):
        rc = main(
            [
                "sweep",
                "--config",
                conf_path,
                "--scenario",
                "sim-lustre-bursty",
                "--scenario-kwargs",
                '{"frist_tick": 4}',
            ]
        )
        assert rc == 2
        assert "bad --scenario-kwargs" in capsys.readouterr().err

    def test_sweep_rejects_invalid_scenario_kwarg_values(self, conf_path, capsys):
        rc = main(
            [
                "sweep",
                "--config",
                conf_path,
                "--scenario",
                "sim-lustre-degraded",
                "--scenario-kwargs",
                '{"start_tick": 0}',
            ]
        )
        assert rc == 2
        assert "bad --scenario-kwargs" in capsys.readouterr().err

    def test_sweep_scenario_named_env_takes_kwargs(self, conf_path, capsys):
        """Naming the timeline via --env alone still accepts
        --scenario-kwargs (spec.build_env reroutes it)."""
        rc = main(
            [
                "sweep",
                "--config",
                conf_path,
                "--tuners",
                "capes",
                "--seeds",
                "0",
                "--env",
                "sim-lustre-degraded",
                "--scenario-kwargs",
                '{"start_tick": 4}',
                "--train-ticks",
                "6",
                "--eval-ticks",
                "4",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "'sim-lustre-degraded': perturbation timeline" in out

    def test_sweep_rejects_scenario_env_mismatch(self, conf_path, capsys):
        rc = main(
            [
                "sweep",
                "--config",
                conf_path,
                "--scenario",
                "sim-lustre-bursty",
                "--env",
                "sim-lustre-degraded",
            ]
        )
        assert rc == 2
        assert "cannot combine" in capsys.readouterr().err

    def test_sweep_rejects_kwargs_on_label_scenario(self, conf_path, capsys):
        rc = main(
            [
                "sweep",
                "--config",
                conf_path,
                "--scenario",
                "just-a-label",
                "--scenario-kwargs",
                '{"start_tick": 4}',
            ]
        )
        assert rc == 2
        assert "registered scenario" in capsys.readouterr().err

    def test_sweep_rejects_unknown_tuner(self, conf_path, capsys):
        rc = main(["sweep", "--config", conf_path, "--tuners", "nope"])
        assert rc == 2
        assert "unknown tuners" in capsys.readouterr().err

    def test_sweep_rejects_bad_seed_range(self, conf_path, capsys):
        rc = main(["sweep", "--config", conf_path, "--seeds", "9-5"])
        assert rc == 2
        assert "bad --seeds" in capsys.readouterr().err

    def test_parse_seeds(self):
        from repro.cli import _parse_seeds

        assert _parse_seeds("42") == [42]
        assert _parse_seeds("0-4") == [0, 1, 2, 3, 4]
        assert _parse_seeds("0-2,7") == [0, 1, 2, 7]
        with pytest.raises(ValueError):
            _parse_seeds("9-5")
        with pytest.raises(ValueError):
            _parse_seeds(",")
