"""Tests for the pluggable environment API (repro.env).

The layer's contract: the ``Environment`` protocol is structural (bare
``StorageTuningEnv`` construction keeps working — the deprecation
shim), the registry round-trips names through specs and pickling, and
``DQNAgent.act_batch`` is exactly the N-loop under greedy mode while
per-env exploration streams stay independent of the vector size.
"""

import pickle

import numpy as np
import pytest

from repro.cluster import ClusterConfig
from repro.env import (
    EnvConfig,
    Environment,
    StorageTuningEnv,
    env_names,
    make_env,
    per_env_rngs,
    register_env,
    vector_seeds,
)
from repro.exp import ExperimentSpec, WorkloadSpec
from repro.rl import DQNAgent, Hyperparameters
from repro.workloads import RandomReadWrite

TINY_HP = Hyperparameters(
    hidden_layer_size=8,
    exploration_ticks=20,
    sampling_ticks_per_observation=3,
)


def tiny_workload(cluster, seed):
    return RandomReadWrite(
        cluster, read_fraction=0.1, seed=seed, instances_per_client=2
    )


def tiny_config(seed: int = 0) -> EnvConfig:
    return EnvConfig(
        cluster=ClusterConfig(n_servers=2, n_clients=2),
        workload_factory=tiny_workload,
        hp=TINY_HP,
        seed=seed,
    )


class TestRegistry:
    def test_sim_lustre_registered(self):
        assert "sim-lustre" in env_names()

    def test_make_env_from_config(self):
        env = make_env("sim-lustre", config=tiny_config())
        assert isinstance(env, StorageTuningEnv)
        env.close()

    def test_make_env_from_field_kwargs(self):
        env = make_env(
            "sim-lustre",
            cluster=ClusterConfig(n_servers=2, n_clients=2),
            workload_factory=tiny_workload,
            hp=TINY_HP,
            seed=3,
        )
        assert env.config.seed == 3
        env.close()

    def test_config_and_kwargs_are_exclusive(self):
        with pytest.raises(ValueError, match="not both"):
            make_env("sim-lustre", config=tiny_config(), seed=1)

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError, match="unknown environment"):
            make_env("real-lustre")

    def test_custom_backend_registers(self):
        sentinel = object()
        register_env("test-backend", lambda **kw: sentinel)
        try:
            assert make_env("test-backend") is sentinel
        finally:
            from repro.env import registry

            del registry._ENVS["test-backend"]

    def test_name_env_spec_pickle_round_trip(self):
        """Registry key → spec → pickle → rebuilt env, all consistent."""
        spec = ExperimentSpec(
            cluster=ClusterConfig(n_servers=2, n_clients=2),
            workload=WorkloadSpec(
                "random_rw", {"read_fraction": 0.1, "instances_per_client": 2}
            ),
            hp=TINY_HP,
            seed=5,
        )
        assert spec.env == "sim-lustre"
        clone = pickle.loads(pickle.dumps(spec))
        assert clone.env == spec.env
        env = clone.build_env()
        assert isinstance(env, StorageTuningEnv)
        assert env.config.seed == 5
        assert clone.to_dict()["env"] == "sim-lustre"
        env.close()


class TestProtocol:
    def test_storage_env_satisfies_protocol(self):
        env = StorageTuningEnv(tiny_config())
        assert isinstance(env, Environment)
        env.close()

    def test_bare_construction_still_works(self):
        """Deprecation shim: pre-registry call sites are untouched."""
        env = StorageTuningEnv(tiny_config())
        obs = env.reset()
        assert obs.shape == (env.obs_dim,)
        obs2, reward, info = env.step(0)
        assert obs2.shape == (env.obs_dim,)
        assert info["tick"] == env.tick
        env.close()

    def test_current_observation_out_buffer_reuse(self):
        env = StorageTuningEnv(tiny_config())
        env.reset()
        fresh = env.current_observation()
        buf = np.empty(env.obs_dim)
        got = env.current_observation(out=buf)
        assert got is buf
        assert np.array_equal(fresh, buf)
        # step(out=...) fills the same buffer and returns it
        stepped = env.step(1, out=buf)[0]
        assert stepped is buf
        assert np.array_equal(buf, env.current_observation())
        env.close()

    def test_out_buffer_wrong_size_rejected(self):
        env = StorageTuningEnv(tiny_config())
        env.reset()
        with pytest.raises(ValueError, match="out buffer"):
            env.current_observation(out=np.empty(3))
        # Right-sized but non-viewable buffers would silently receive
        # nothing (reshape copies); they must be rejected too.
        strided = np.empty(2 * env.obs_dim)[::2]
        with pytest.raises(ValueError, match="C-contiguous"):
            env.current_observation(out=strided)
        with pytest.raises(ValueError, match="float64"):
            env.current_observation(out=np.empty(env.obs_dim, dtype=np.int64))
        env.close()

    def test_records_since(self):
        env = StorageTuningEnv(tiny_config())
        env.reset()
        warm = env.records_since(-1)
        assert [r.tick for r in warm] == list(range(1, env.tick + 1))
        env.step(1)
        new = env.records_since(warm[-1].tick)
        assert [r.tick for r in new] == [env.tick]
        env.close()

    def test_records_since_packed_matches_object_form(self):
        """The packed transport is a pure encoding change: field for
        field identical to the TickRecord list, at every watermark."""
        env = StorageTuningEnv(tiny_config())
        env.reset()
        for _ in range(3):
            env.step(1)
        for since in (-1, 0, env.tick - 2, env.tick):
            records = env.records_since(since)
            packed = env.records_since_packed(since)
            assert len(packed) == len(records)
            assert packed.frames.shape == (len(records), env.frame_dim)
            for i, rec in enumerate(records):
                assert int(packed.ticks[i]) == rec.tick
                assert int(packed.actions[i]) == rec.action
                assert float(packed.rewards[i]) == rec.reward
                np.testing.assert_array_equal(packed.frames[i], rec.frame)
        env.close()


class TestDerivedStreams:
    def test_vector_seeds_independent_of_n(self):
        assert vector_seeds(7, 2) == vector_seeds(7, 4)[:2]
        assert vector_seeds(7, 3) != vector_seeds(8, 3)

    def test_per_env_rngs_independent_of_n(self):
        small = per_env_rngs(7, 2)
        large = per_env_rngs(7, 4)
        for a, b in zip(small, large):
            assert np.array_equal(a.random(5), b.random(5))


class TestActBatch:
    def _agent(self, obs_dim=30, n_actions=5, **kw):
        return DQNAgent(obs_dim, n_actions, hp=TINY_HP, rng=1, **kw)

    def test_greedy_batch_equals_n_loop(self):
        agent = self._agent()
        obs = np.random.default_rng(0).normal(size=(16, 30))
        batched = agent.act_batch(obs, greedy=True)
        looped = [agent.act(o, greedy=True) for o in obs]
        assert batched.tolist() == looped

    def test_greedy_batch_equals_n_loop_with_batchnorm(self):
        """The classic vectorization bug: a batch of N must use running
        statistics in eval mode, not the batch's own."""
        agent = self._agent(use_batchnorm=True)
        obs = np.random.default_rng(1).normal(size=(8, 30))
        batched = agent.act_batch(obs, greedy=True)
        looped = [agent.act(o, greedy=True) for o in obs]
        assert batched.tolist() == looped

    def test_epsilon_steps_once_per_batch(self):
        agent = self._agent()
        agent.act_batch(np.zeros((4, 30)), rngs=per_env_rngs(0, 4))
        # One batch = one action tick of system time, not four.
        assert agent.epsilon.ticks == 1
        assert agent.actions_taken == 4

    def test_per_env_streams_unperturbed_by_vector_size(self):
        obs2 = np.random.default_rng(2).normal(size=(2, 30))
        obs4 = np.vstack([obs2, np.zeros((2, 30))])
        a2 = self._agent().act_batch(obs2, rngs=per_env_rngs(0, 2))
        a4 = self._agent().act_batch(obs4, rngs=per_env_rngs(0, 4))
        assert a2.tolist() == a4[:2].tolist()

    def test_rejects_mismatched_streams_and_shapes(self):
        agent = self._agent()
        with pytest.raises(ValueError, match="rng streams"):
            agent.act_batch(np.zeros((3, 30)), rngs=per_env_rngs(0, 2))
        with pytest.raises(ValueError, match="obs_batch"):
            agent.act_batch(np.zeros(30))
