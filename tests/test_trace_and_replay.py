"""Tests for the request tracer and the trace-replay workload."""

import numpy as np
import pytest

from repro.cluster import Cluster, ClusterConfig, RequestTracer
from repro.sim import Simulator
from repro.util.units import KiB, MiB
from repro.workloads import (
    RandomReadWrite,
    TraceOp,
    TraceReplay,
    load_trace_csv,
    save_trace_csv,
    synthesize_trace,
)


def build(n_servers=2, n_clients=2):
    sim = Simulator()
    cluster = Cluster(sim, ClusterConfig(n_servers=n_servers, n_clients=n_clients))
    return sim, cluster


class TestRequestTracer:
    def test_records_completed_rpcs(self):
        sim, cluster = build()
        tracer = RequestTracer(cluster).attach()
        wl = RandomReadWrite(cluster, read_fraction=0.5, seed=0)
        wl.start()
        sim.run(until=5.0)
        assert len(tracer.records) > 0
        r = tracer.records[0]
        assert r.latency > 0
        assert r.kind in ("read", "write")
        tracer.detach()

    def test_detach_stops_recording(self):
        sim, cluster = build()
        tracer = RequestTracer(cluster).attach()
        wl = RandomReadWrite(cluster, read_fraction=0.5, seed=0)
        wl.start()
        sim.run(until=2.0)
        tracer.detach()
        n = len(tracer.records)
        sim.run(until=4.0)
        assert len(tracer.records) == n

    def test_context_manager(self):
        sim, cluster = build()
        wl = RandomReadWrite(cluster, read_fraction=0.0, seed=0)
        wl.start()
        with RequestTracer(cluster) as tracer:
            sim.run(until=3.0)
        assert len(tracer.records) > 0

    def test_double_attach_rejected(self):
        sim, cluster = build()
        tracer = RequestTracer(cluster).attach()
        with pytest.raises(RuntimeError):
            tracer.attach()

    def test_summary_percentiles_ordered(self):
        sim, cluster = build()
        with RequestTracer(cluster) as tracer:
            wl = RandomReadWrite(cluster, read_fraction=0.3, seed=1)
            wl.start()
            sim.run(until=10.0)
        s = tracer.summary()
        assert 0 < s.p50 <= s.p90 <= s.p99 <= s.max
        assert s.count == len(tracer.records)

    def test_kind_filter(self):
        sim, cluster = build()
        with RequestTracer(cluster) as tracer:
            wl = RandomReadWrite(cluster, read_fraction=0.5, seed=2)
            wl.start()
            sim.run(until=8.0)
        reads = tracer.latencies("read")
        writes = tracer.latencies("write")
        assert len(reads) + len(writes) == len(tracer.records)

    def test_max_records_cap(self):
        sim, cluster = build()
        tracer = RequestTracer(cluster, max_records=5).attach()
        wl = RandomReadWrite(cluster, read_fraction=0.5, seed=0)
        wl.start()
        sim.run(until=5.0)
        assert len(tracer.records) == 5
        assert tracer.dropped > 0

    def test_per_server_counts(self):
        sim, cluster = build()
        with RequestTracer(cluster) as tracer:
            wl = RandomReadWrite(cluster, read_fraction=0.2, seed=0)
            wl.start()
            sim.run(until=10.0)
        counts = tracer.per_server_counts()
        assert sum(counts.values()) == len(tracer.records)
        assert set(counts) <= {0, 1}

    def test_empty_summary_rejected(self):
        sim, cluster = build()
        tracer = RequestTracer(cluster)
        with pytest.raises(ValueError):
            tracer.summary()


class TestTraceOps:
    def test_validation(self):
        with pytest.raises(ValueError):
            TraceOp(time=0.0, op="scribble", obj_id=1)
        with pytest.raises(ValueError):
            TraceOp(time=-1.0, op="read", obj_id=1, size=10)
        with pytest.raises(ValueError):
            TraceOp(time=0.0, op="read", obj_id=1, size=0)
        TraceOp(time=0.0, op="stat", obj_id=1)  # metadata needs no size

    def test_csv_roundtrip(self, tmp_path):
        ops = [
            TraceOp(0.5, "write", 7, 0, 4096),
            TraceOp(1.0, "read", 7, 4096, 4096),
            TraceOp(2.0, "stat", 7),
        ]
        path = tmp_path / "trace.csv"
        save_trace_csv(path, ops)
        loaded = load_trace_csv(path)
        assert loaded == sorted(ops, key=lambda o: o.time)

    def test_empty_csv_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("time,op,obj_id,offset,size\n")
        with pytest.raises(ValueError):
            load_trace_csv(path)


class TestSynthesizeTrace:
    def test_generates_sorted_ops(self):
        ops = synthesize_trace(duration=30.0, ops_per_second=20.0, seed=0)
        times = [o.time for o in ops]
        assert times == sorted(times)
        assert times[-1] < 30.0
        assert len(ops) > 300

    def test_phases_flip_dominant_direction(self):
        ops = synthesize_trace(
            duration=120.0, ops_per_second=50.0, phase_length=60.0, seed=1
        )
        first = [o for o in ops if o.time < 60.0 and o.op in ("read", "write")]
        second = [o for o in ops if o.time >= 60.0 and o.op in ("read", "write")]
        r1 = sum(o.op == "read" for o in first) / len(first)
        r2 = sum(o.op == "read" for o in second) / len(second)
        assert r1 > 0.7 and r2 < 0.3

    def test_deterministic(self):
        a = synthesize_trace(10.0, seed=3)
        b = synthesize_trace(10.0, seed=3)
        assert a == b

    def test_bad_args(self):
        with pytest.raises(ValueError):
            synthesize_trace(0.0)


class TestTraceReplay:
    def test_replays_all_ops_closed_loop(self):
        sim, cluster = build()
        ops = [
            TraceOp(float(i), "write", 10 + i % 3, (i % 8) * 32 * KiB, 32 * KiB)
            for i in range(20)
        ]
        wl = TraceReplay(cluster, ops, paced=False, loop=False, seed=0)
        wl.start()
        sim.run(until=120.0)
        assert wl.replayed == 20
        assert wl.stats.writes == 20

    def test_paced_replay_honours_timestamps(self):
        sim, cluster = build()
        ops = [TraceOp(5.0, "write", 1, 0, 32 * KiB)]
        wl = TraceReplay(cluster, ops, paced=True, loop=False, seed=0)
        wl.start()
        sim.run(until=4.0)
        assert wl.replayed == 0
        sim.run(until=30.0)
        assert wl.replayed == 1

    def test_loop_restarts_trace(self):
        sim, cluster = build()
        ops = [TraceOp(0.1, "write", 1, 0, 32 * KiB)]
        wl = TraceReplay(cluster, ops, paced=False, loop=True, seed=0)
        wl.start()
        sim.run(until=10.0)
        assert wl.replayed > 3

    def test_shards_split_across_clients(self):
        sim, cluster = build(n_clients=2)
        ops = [
            TraceOp(float(i) * 0.01, "stat", 50 + i) for i in range(10)
        ]
        wl = TraceReplay(cluster, ops, paced=False, loop=False, seed=0)
        assert len(wl._shard(0)) == 5
        assert len(wl._shard(1)) == 5

    def test_empty_trace_rejected(self):
        sim, cluster = build()
        with pytest.raises(ValueError):
            TraceReplay(cluster, [], seed=0)

    def test_synthesized_trace_end_to_end(self):
        sim, cluster = build()
        ops = synthesize_trace(duration=20.0, ops_per_second=30.0, seed=5)
        wl = TraceReplay(cluster, ops, paced=True, loop=False, seed=0)
        wl.start()
        sim.run(until=40.0)
        assert wl.replayed > len(ops) // 2
        assert cluster.total_bytes() > 0
