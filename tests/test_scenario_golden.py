"""Golden-trace determinism for scenario rollouts.

Extends PR 1's ``derive_rng`` golden-value approach from single streams
to full environment rollouts: a pinned-seed scenario run must produce
**byte-identical** observation/reward traces

- across interpreter invocations (the pinned digests below were
  computed once and must never drift — every pytest run is a fresh
  interpreter, so matching them *is* the cross-invocation check);
- between the serial and fork VectorEnv backends;
- between a vectorized replica and the equivalent standalone run.

If a digest changes, seeded scenario experiments stopped being
replayable: treat it as a regression, not a constant to refresh —
unless the change is an intentional, documented semantic change to the
simulation or scenario layer.
"""

import hashlib

import numpy as np
import pytest

from repro.cluster import ClusterConfig
from repro.env import VectorEnv, make_env, vector_seeds
from repro.rl import Hyperparameters

GOLDEN_SEED = 17
N_TICKS = 10

HP = Hyperparameters(
    hidden_layer_size=8,
    exploration_ticks=20,
    sampling_ticks_per_observation=3,
)
ENV_KW = dict(cluster=ClusterConfig(n_servers=2, n_clients=2), hp=HP)

#: Compressed event timings so every scenario fires (and, where
#: windowed, reverts) inside the N_TICKS horizon.
SCENARIO_KW = {
    "sim-lustre-degraded": dict(start_tick=4),
    "sim-lustre-bursty": dict(first_tick=4, period=5, n_bursts=2, duration=2),
    "sim-lustre-churn": dict(
        first_tick=4, period=5, absence_ticks=2, n_cycles=2
    ),
}

#: blake2b-128 over the reset observation plus every (obs, reward) of a
#: 10-tick scripted rollout at seed 17 (see ``_rollout_digest``).
GOLDEN_DIGESTS = {
    "sim-lustre-degraded": "fd8060876c3cae95ff87c4fbfde0e6f8",
    "sim-lustre-bursty": "87a5f4f980088a10d604f160ea8c2647",
    "sim-lustre-churn": "35d454096a4e84f9a64e8d726bf8409e",
}


def _rollout_digest(env, n_ticks: int = N_TICKS) -> str:
    """Digest of the byte-exact observation/reward trace."""
    h = hashlib.blake2b(digest_size=16)
    try:
        obs = env.reset()
        h.update(np.ascontiguousarray(obs, dtype=np.float64).tobytes())
        for t in range(n_ticks):
            obs, reward, _info = env.step(t % env.n_actions)
            h.update(np.ascontiguousarray(obs, dtype=np.float64).tobytes())
            h.update(np.float64(reward).tobytes())
    finally:
        env.close()
    return h.hexdigest()


@pytest.mark.parametrize("name", sorted(GOLDEN_DIGESTS))
def test_pinned_scenario_rollout_digest(name):
    env = make_env(
        name, seed=GOLDEN_SEED, scenario_kwargs=SCENARIO_KW[name], **ENV_KW
    )
    assert _rollout_digest(env) == GOLDEN_DIGESTS[name], (
        f"{name} rollout trace drifted: seeded scenario runs are no "
        f"longer replayable across invocations"
    )


def _vector_trace(name: str, n: int, backend: str):
    venv = VectorEnv.from_registry(
        name,
        n,
        base_seed=GOLDEN_SEED,
        backend=backend,
        env_kwargs=dict(scenario_kwargs=SCENARIO_KW[name], **ENV_KW),
        tick_stride=256,
    )
    try:
        trace = [venv.reset().copy()]
        for t in range(N_TICKS):
            obs, rewards, _infos = venv.step(
                [t % venv.n_actions] * n
            )
            trace.append(obs.copy())
            trace.append(rewards.copy())
        return trace
    finally:
        venv.close()


@pytest.mark.parametrize("name", sorted(GOLDEN_DIGESTS))
def test_serial_and_fork_backends_byte_identical(name):
    serial = _vector_trace(name, 2, "serial")
    fork = _vector_trace(name, 2, "fork")
    for s, f in zip(serial, fork):
        np.testing.assert_array_equal(s, f)


def test_vector_replica_matches_standalone_run():
    """Replica i of a scenario fleet is byte-identical to a standalone
    env built with the same derived seed (PR 2's contract, now holding
    under perturbation timelines too)."""
    name = "sim-lustre-churn"
    trace = _vector_trace(name, 2, "serial")
    for i, seed in enumerate(vector_seeds(GOLDEN_SEED, 2)):
        env = make_env(
            name, seed=seed, scenario_kwargs=SCENARIO_KW[name], **ENV_KW
        )
        try:
            obs = env.reset()
            np.testing.assert_array_equal(obs, trace[0][i])
            for t in range(N_TICKS):
                obs, reward, _info = env.step(t % env.n_actions)
                np.testing.assert_array_equal(obs, trace[1 + 2 * t][i])
                assert reward == trace[2 + 2 * t][i]
        finally:
            env.close()
