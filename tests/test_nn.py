"""Tests for the NumPy DNN substrate: layers, MLP, losses, optimizers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import (
    MLP,
    SGD,
    Adam,
    Dense,
    Identity,
    Momentum,
    ReLU,
    RMSProp,
    Tanh,
    he_uniform,
    huber_loss,
    load_checkpoint,
    mse_loss,
    save_checkpoint,
    xavier_uniform,
)


class TestInitializers:
    def test_xavier_bounds(self):
        w = xavier_uniform(100, 50, rng=0)
        bound = np.sqrt(6.0 / 150)
        assert w.shape == (100, 50)
        assert np.abs(w).max() <= bound

    def test_he_bounds(self):
        w = he_uniform(100, 50, rng=0)
        assert np.abs(w).max() <= np.sqrt(6.0 / 100)

    def test_deterministic_with_seed(self):
        np.testing.assert_array_equal(
            xavier_uniform(4, 4, rng=7), xavier_uniform(4, 4, rng=7)
        )

    def test_bad_fans(self):
        with pytest.raises(ValueError):
            xavier_uniform(0, 4)


class TestActivations:
    def test_tanh_forward_backward(self):
        a = Tanh()
        x = np.array([[0.0, 1.0, -1.0]])
        y = a.forward(x)
        np.testing.assert_allclose(y, np.tanh(x))
        g = a.backward(np.ones_like(x))
        np.testing.assert_allclose(g, 1.0 - np.tanh(x) ** 2)

    def test_relu(self):
        a = ReLU()
        x = np.array([[-1.0, 0.0, 2.0]])
        np.testing.assert_array_equal(a.forward(x), [[0.0, 0.0, 2.0]])
        np.testing.assert_array_equal(
            a.backward(np.ones_like(x)), [[0.0, 0.0, 1.0]]
        )

    def test_identity(self):
        a = Identity()
        x = np.array([[3.0]])
        assert a.forward(x) is x
        np.testing.assert_array_equal(a.backward(x), x)

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            Tanh().backward(np.ones((1, 2)))


class TestDense:
    def test_forward_affine(self):
        d = Dense(2, 3, rng=0)
        d.W.value[...] = np.arange(6).reshape(2, 3)
        d.b.value[...] = [1.0, 1.0, 1.0]
        y = d.forward(np.array([[1.0, 2.0]]))
        np.testing.assert_allclose(y, [[7.0, 10.0, 13.0]])

    def test_gradients_match_finite_differences(self):
        rng = np.random.default_rng(0)
        d = Dense(4, 3, rng=1)
        x = rng.normal(size=(5, 4))
        target = rng.normal(size=(5, 3))

        def loss_at(Wflat):
            W_old = d.W.value.copy()
            d.W.value[...] = Wflat.reshape(4, 3)
            val, _ = mse_loss(d.forward(x), target)
            d.W.value[...] = W_old
            return val

        d.W.zero_grad()
        _, dpred = mse_loss(d.forward(x), target)
        d.backward(dpred)
        analytic = d.W.grad.ravel()

        eps = 1e-6
        W0 = d.W.value.ravel().copy()
        numeric = np.zeros_like(W0)
        for i in range(W0.size):
            up, dn = W0.copy(), W0.copy()
            up[i] += eps
            dn[i] -= eps
            numeric[i] = (loss_at(up) - loss_at(dn)) / (2 * eps)
        np.testing.assert_allclose(analytic, numeric, rtol=1e-5, atol=1e-8)

    def test_input_gradient_shape(self):
        d = Dense(4, 2, rng=0)
        x = np.zeros((3, 4))
        d.forward(x)
        gin = d.backward(np.ones((3, 2)))
        assert gin.shape == (3, 4)

    def test_shape_validation(self):
        d = Dense(4, 2, rng=0)
        with pytest.raises(ValueError):
            d.forward(np.zeros((3, 5)))
        d.forward(np.zeros((3, 4)))
        with pytest.raises(ValueError):
            d.backward(np.zeros((3, 3)))

    def test_gradients_accumulate(self):
        d = Dense(2, 2, rng=0)
        x = np.ones((1, 2))
        for _ in range(2):
            d.forward(x)
            d.backward(np.ones((1, 2)))
        np.testing.assert_allclose(d.W.grad, 2 * np.ones((2, 2)))
        d.W.zero_grad()
        np.testing.assert_array_equal(d.W.grad, 0)


class TestMLP:
    def test_q_topology_matches_paper(self):
        net = MLP.for_q_network(obs_dim=20, n_actions=5, rng=0)
        # input, two hidden of input width, output per action
        assert net.layer_dims == [20, 20, 20, 5]

    def test_hidden_size_override(self):
        net = MLP.for_q_network(20, 5, hidden_size=8, rng=0)
        assert net.layer_dims == [20, 8, 8, 5]

    def test_forward_batch_and_single(self):
        net = MLP([3, 4, 2], rng=0)
        batch = net.forward(np.zeros((7, 3)))
        single = net.forward(np.zeros(3))
        assert batch.shape == (7, 2)
        assert single.shape == (2,)

    def test_full_network_gradcheck(self):
        rng = np.random.default_rng(3)
        net = MLP([3, 5, 2], rng=2)
        x = rng.normal(size=(4, 3))
        target = rng.normal(size=(4, 2))
        net.zero_grad()
        _, dpred = mse_loss(net.forward(x), target)
        net.backward(dpred)
        params = net.parameters()
        eps = 1e-6
        for p in params:
            flat = p.value.ravel()
            grad = p.grad.ravel()
            idx = rng.integers(0, flat.size, size=min(6, flat.size))
            for i in idx:
                orig = flat[i]
                flat[i] = orig + eps
                up, _ = mse_loss(net.forward(x), target)
                flat[i] = orig - eps
                dn, _ = mse_loss(net.forward(x), target)
                flat[i] = orig
                num = (up - dn) / (2 * eps)
                assert grad[i] == pytest.approx(num, rel=1e-4, abs=1e-7)

    def test_clone_copies_weights_not_aliases(self):
        net = MLP([3, 4, 2], rng=0)
        twin = net.clone()
        np.testing.assert_array_equal(
            net.parameters()[0].value, twin.parameters()[0].value
        )
        twin.parameters()[0].value[...] += 1.0
        assert not np.allclose(
            net.parameters()[0].value, twin.parameters()[0].value
        )

    def test_set_weights_validates(self):
        net = MLP([3, 4, 2], rng=0)
        with pytest.raises(ValueError):
            net.set_weights([np.zeros((3, 4))])  # wrong count
        w = net.get_weights()
        w[0] = np.zeros((4, 3))  # wrong shape
        with pytest.raises(ValueError):
            net.set_weights(w)

    def test_num_parameters(self):
        net = MLP([3, 4, 2], rng=0)
        assert net.num_parameters() == 3 * 4 + 4 + 4 * 2 + 2

    def test_nbytes_positive(self):
        assert MLP([3, 4, 2], rng=0).nbytes() > 0

    def test_bad_dims_rejected(self):
        with pytest.raises(ValueError):
            MLP([3])
        with pytest.raises(ValueError):
            MLP([3, 0, 2])


class TestLosses:
    def test_mse_value_and_grad(self):
        pred = np.array([1.0, 2.0])
        target = np.array([0.0, 0.0])
        val, grad = mse_loss(pred, target)
        assert val == pytest.approx(2.5)
        np.testing.assert_allclose(grad, [1.0, 2.0])

    def test_mse_zero_at_match(self):
        x = np.array([1.0, 2.0])
        val, grad = mse_loss(x, x)
        assert val == 0.0
        np.testing.assert_array_equal(grad, 0)

    def test_huber_quadratic_region(self):
        val, grad = huber_loss(np.array([0.5]), np.array([0.0]), delta=1.0)
        assert val == pytest.approx(0.125)
        np.testing.assert_allclose(grad, [0.5])

    def test_huber_linear_region_clips_gradient(self):
        val, grad = huber_loss(np.array([10.0]), np.array([0.0]), delta=1.0)
        assert val == pytest.approx(9.5)
        np.testing.assert_allclose(grad, [1.0])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            mse_loss(np.zeros(2), np.zeros(3))
        with pytest.raises(ValueError):
            huber_loss(np.zeros(2), np.zeros(3))


class OptimizerMixin:
    def make(self):
        raise NotImplementedError

    def test_converges_on_quadratic(self):
        """Minimise ||x - c||^2; every optimiser must reach c."""
        from repro.nn.layers import Parameter

        opt = self.make()
        c = np.array([3.0, -2.0])
        p = Parameter("x", np.zeros(2))
        for _ in range(6000):
            p.zero_grad()
            p.grad[...] = 2 * (p.value - c)
            opt.step([p])
        np.testing.assert_allclose(p.value, c, atol=1e-2)

    def test_rejects_bad_lr(self):
        with pytest.raises(ValueError):
            type(self.make())(lr=0.0)


class TestSGD(OptimizerMixin):
    def make(self):
        return SGD(lr=0.05)


class TestMomentum(OptimizerMixin):
    def make(self):
        return Momentum(lr=0.01, momentum=0.9)


class TestRMSProp(OptimizerMixin):
    def make(self):
        return RMSProp(lr=0.01)


class TestAdam(OptimizerMixin):
    def make(self):
        return Adam(lr=0.05)

    def test_steps_counter(self):
        from repro.nn.layers import Parameter

        opt = Adam(lr=0.01)
        p = Parameter("x", np.zeros(2))
        opt.step([p])
        opt.step([p])
        assert opt.steps == 2

    def test_state_roundtrip(self):
        from repro.nn.layers import Parameter

        opt = Adam(lr=0.01)
        p = Parameter("x", np.ones(3))
        p.grad[...] = 1.0
        opt.step([p])
        state = opt.state_arrays()
        opt2 = Adam(lr=0.01)
        opt2.load_state_arrays(state)
        assert opt2.steps == 1
        np.testing.assert_array_equal(opt2._m[0], opt._m[0])


class TestCheckpoint:
    def test_roundtrip(self, tmp_path):
        net = MLP([3, 4, 2], rng=0)
        opt = Adam(lr=0.01)
        # make some optimizer state
        net.zero_grad()
        _, d = mse_loss(net.forward(np.ones((1, 3))), np.zeros((1, 2)))
        net.backward(d)
        opt.step(net.parameters())
        path = tmp_path / "model.npz"
        save_checkpoint(path, net, optimizer=opt, extra={"epsilon": 0.3})

        opt2 = Adam(lr=0.01)
        net2, extras = load_checkpoint(path, optimizer=opt2)
        assert net2.layer_dims == net.layer_dims
        for a, b in zip(net.get_weights(), net2.get_weights()):
            np.testing.assert_array_equal(a, b)
        assert opt2.steps == 1
        assert float(extras["epsilon"]) == pytest.approx(0.3)

    def test_outputs_identical_after_reload(self, tmp_path):
        net = MLP([5, 6, 3], rng=1)
        path = tmp_path / "m.npz"
        save_checkpoint(path, net)
        net2, _ = load_checkpoint(path)
        x = np.random.default_rng(0).normal(size=(4, 5))
        np.testing.assert_array_equal(net.forward(x), net2.forward(x))


@settings(max_examples=20, deadline=None)
@given(
    batch=st.integers(min_value=1, max_value=8),
    dim=st.integers(min_value=1, max_value=6),
)
def test_mlp_output_finite_for_any_shape(batch, dim):
    """Property: forward pass is finite for bounded random inputs."""
    net = MLP([dim, dim, 2], rng=0)
    x = np.random.default_rng(1).normal(size=(batch, dim))
    out = net.forward(x)
    assert out.shape == (batch, 2)
    assert np.isfinite(out).all()
