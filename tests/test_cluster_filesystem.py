"""Tests for striping arithmetic and metric counters."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cluster.filesystem import FileLayout
from repro.cluster.metrics import Counter, MetricRegistry
from repro.util.units import MiB


class TestFileLayout:
    def test_server_of_round_robin(self):
        l = FileLayout(n_servers=4, stripe_size=MiB)
        assert [l.server_of(i * MiB) for i in range(6)] == [0, 1, 2, 3, 0, 1]

    def test_split_within_one_stripe(self):
        l = FileLayout(4, MiB)
        assert l.split(100, 1000) == [(0, 100, 1000)]

    def test_split_across_boundary(self):
        l = FileLayout(4, MiB)
        chunks = l.split(MiB - 10, 20)
        assert chunks == [(0, MiB - 10, 10), (1, MiB, 10)]

    def test_split_large_extent_touches_all_servers(self):
        l = FileLayout(4, MiB)
        chunks = l.split(0, 8 * MiB)
        assert len(chunks) == 8
        assert {c[0] for c in chunks} == {0, 1, 2, 3}

    def test_invalid_args(self):
        l = FileLayout(2, MiB)
        with pytest.raises(ValueError):
            l.split(-1, 10)
        with pytest.raises(ValueError):
            l.split(0, 0)

    @given(
        offset=st.integers(min_value=0, max_value=2**32),
        size=st.integers(min_value=1, max_value=64 * MiB),
        n_servers=st.integers(min_value=1, max_value=8),
    )
    def test_split_partitions_extent(self, offset, size, n_servers):
        """Property: chunks tile the extent exactly and respect stripes."""
        l = FileLayout(n_servers, MiB)
        chunks = l.split(offset, size)
        assert sum(c[2] for c in chunks) == size
        pos = offset
        for sidx, off, sz in chunks:
            assert off == pos
            assert sidx == l.server_of(off)
            # a chunk never crosses a stripe boundary
            assert off // MiB == (off + sz - 1) // MiB
            pos += sz


class TestCounters:
    def test_counter_monotone(self):
        c = Counter()
        c.add(5)
        with pytest.raises(ValueError):
            c.add(-1)
        assert c.value == 5

    def test_delta_per_reader(self):
        c = Counter()
        c.add(10)
        assert c.delta("a") == 10
        c.add(5)
        assert c.delta("a") == 5
        assert c.delta("b") == 15  # b never read before

    def test_peek_delta_does_not_advance(self):
        c = Counter()
        c.add(3)
        assert c.peek_delta("r") == 3
        assert c.peek_delta("r") == 3
        assert c.delta("r") == 3
        assert c.peek_delta("r") == 0

    def test_registry_creates_on_demand(self):
        m = MetricRegistry()
        m.add("x.y", 2)
        assert m.value("x.y") == 2
        assert m.value("fresh") == 0
        assert "x.y" in m.names()

    def test_snapshot(self):
        m = MetricRegistry()
        m.add("a", 1)
        m.add("b", 2)
        snap = m.snapshot()
        m.add("a", 1)
        assert snap == {"a": 1, "b": 2}
