"""The transport layer under a microscope (framing, media, codecs).

The distribution stack's load-bearing property is that **all three
byte media behave identically**: a forked worker over a pipe, a remote
shard over TCP and an in-process loopback pair must frame, reassemble,
reject and close exactly the same way, because they share one
:class:`~repro.transport.base.StreamTransport` /
:class:`~repro.transport.framing.FrameDecoder` implementation.  The
hypothesis properties here feed *arbitrary byte splits* — half a
prefix, coalesced frames, one byte per chunk — through every medium
and require identical message streams out.

The hypothesis runs are derandomized so the tier-1 suite stays
deterministic; bump ``max_examples`` locally when hunting.
"""

import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.replaydb.records import PackedRecords
from repro.transport import (
    MAX_PAYLOAD,
    MSG_CMD,
    FrameDecoder,
    LoopbackTransport,
    PipeTransport,
    ProtocolError,
    SocketListener,
    SocketTransport,
    TransportClosedError,
    decode_command,
    decode_error,
    decode_reply,
    decode_sections,
    encode_command,
    encode_error,
    encode_frame,
    encode_reply,
    encode_sections,
    loopback_pair,
    parse_address,
    pipe_pair,
)
from repro.transport.framing import PREFIX

SETTINGS = dict(max_examples=25, deadline=None, derandomize=True)

TRANSPORTS = ["loopback", "pipe", "socket"]


def make_pair(kind: str, max_payload: int = MAX_PAYLOAD):
    """A connected (a, b) transport pair of the requested medium."""
    if kind == "loopback":
        return loopback_pair(max_payload=max_payload)
    if kind == "pipe":
        a, b = pipe_pair()
        a._decoder.max_payload = max_payload
        b._decoder.max_payload = max_payload
        return a, b
    if kind == "socket":
        with SocketListener(max_payload=max_payload) as listener:
            a = SocketTransport.connect(
                listener.address, timeout=5.0, max_payload=max_payload
            )
            b = listener.accept()
        return a, b
    raise AssertionError(kind)


def chunked(data: bytes, cuts) -> list:
    """Split ``data`` at the (sorted, deduplicated) cut offsets."""
    points = sorted({c % (len(data) + 1) for c in cuts} | {0, len(data)})
    return [
        data[lo:hi]
        for lo, hi in zip(points, points[1:])
        if hi > lo  # empty chunks read as EOF on pipes/queues
    ]


# --------------------------------------------------------------------------
# Framing properties: every medium, every byte split
# --------------------------------------------------------------------------

frames_st = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=255),
        st.binary(max_size=120),
    ),
    min_size=1,
    max_size=6,
)
cuts_st = st.lists(st.integers(min_value=0, max_value=10_000), max_size=12)


@pytest.mark.parametrize("kind", TRANSPORTS)
@settings(**SETTINGS)
@given(frames=frames_st, cuts=cuts_st)
def test_any_byte_split_reassembles_identically(kind, frames, cuts):
    """Frames survive arbitrary chunking on every medium, in order."""
    wire = b"".join(encode_frame(t, p) for t, p in frames)
    a, b = make_pair(kind)
    try:
        for chunk in chunked(wire, cuts):
            a._write_bytes(chunk)
        got = [b.recv() for _ in frames]
        assert got == frames
    finally:
        a.close()
        b.close()


@settings(**SETTINGS)
@given(frames=frames_st, cuts=cuts_st)
def test_frame_decoder_matches_oracle(frames, cuts):
    """The incremental decoder equals decode-everything-at-once."""
    wire = b"".join(encode_frame(t, p) for t, p in frames)
    decoder = FrameDecoder()
    out = []
    for chunk in chunked(wire, cuts):
        out.extend(decoder.feed(chunk))
    assert out == frames
    assert decoder.at_boundary and decoder.buffered == 0


@pytest.mark.parametrize("kind", TRANSPORTS)
def test_truncated_final_frame_is_a_protocol_error(kind):
    """EOF mid-frame is corruption, not a clean goodbye."""
    a, b = make_pair(kind)
    whole = encode_frame(7, b"payload bytes")
    a._write_bytes(whole[: len(whole) - 3])
    a.close()
    with pytest.raises(ProtocolError, match="mid-frame"):
        b.recv()
    b.close()


@pytest.mark.parametrize("kind", TRANSPORTS)
def test_clean_eof_between_frames_is_transport_closed(kind):
    """EOF at a frame boundary delivers the frame, then a clean close."""
    a, b = make_pair(kind)
    a.send(3, b"last words")
    a.close()
    assert b.recv() == (3, b"last words")
    with pytest.raises(TransportClosedError):
        b.recv()
    assert b.closed
    b.close()


@pytest.mark.parametrize("kind", TRANSPORTS)
def test_oversized_frame_rejected_before_buffering(kind):
    """A length prefix beyond the cap raises on every medium.

    The bogus prefix claims a huge payload that is never sent — the
    decoder must reject it from the prefix alone, not try to buffer.
    """
    cap = 64
    a, b = make_pair(kind, max_payload=cap)
    a._write_bytes(PREFIX.pack(MSG_CMD, cap + 1))
    with pytest.raises(ProtocolError, match="exceeds cap"):
        b.recv()
    with pytest.raises(ProtocolError):
        a.send(MSG_CMD, b"x" * (cap + 1))
    a.close()
    b.close()


@pytest.mark.parametrize("kind", TRANSPORTS)
def test_close_is_idempotent_and_fences_send(kind):
    a, b = make_pair(kind)
    a.close()
    a.close()  # second close is a no-op
    assert a.closed
    with pytest.raises(TransportClosedError):
        a.send(1, b"too late")
    b.close()
    b.close()


def test_listener_close_unblocks_accept_contract():
    listener = SocketListener()
    listener.close()
    listener.close()  # idempotent
    with pytest.raises(TransportClosedError):
        listener.accept()


def test_parse_address():
    assert parse_address("10.0.0.7:9400") == ("10.0.0.7", 9400)
    assert parse_address("localhost:0") == ("localhost", 0)
    with pytest.raises(ValueError):
        parse_address("no-port-here")
    with pytest.raises(ValueError):
        parse_address("host:not-a-port")


# --------------------------------------------------------------------------
# Section codec: raw buffers, not pickles
# --------------------------------------------------------------------------


def test_sections_round_trip_arrays_byte_exact():
    arrays = {
        "obs": np.linspace(-1.0, 1.0, 7),
        "ticks": np.arange(5, dtype=np.int64),
        "frames": np.arange(10, dtype=np.float64).reshape(5, 2),
    }
    payload = encode_sections(
        {"cmd": "x", "k": 3}, arrays, blobs={"raw": b"\x00\xffblob"}
    )
    meta, got, blobs = decode_sections(payload)
    assert meta == {"cmd": "x", "k": 3}
    assert blobs == {"raw": b"\x00\xffblob"}
    for name, arr in arrays.items():
        assert got[name].dtype == arr.dtype
        assert got[name].shape == arr.shape
        assert got[name].tobytes() == arr.tobytes()
        assert not got[name].flags.writeable  # zero-copy view


@pytest.mark.parametrize(
    "mangle",
    [
        lambda p: p[:3],  # shorter than the header-length word
        lambda p: p[:6],  # header overruns payload
        lambda p: p[:4] + b"\xff" + p[5:],  # header is not JSON
        lambda p: p[: len(p) - 1],  # final array buffer truncated
    ],
)
def test_sections_reject_corruption(mangle):
    payload = encode_sections({"a": 1}, {"x": np.arange(4.0)})
    with pytest.raises(ProtocolError):
        decode_sections(mangle(payload))


# --------------------------------------------------------------------------
# Command / reply / error codecs
# --------------------------------------------------------------------------


def test_command_round_trips_strip_master_only_pieces():
    out_buffer = np.empty(3)  # must never cross the boundary
    cmd, env, data = decode_command(
        encode_command("step", 2, (np.int64(4), out_buffer, 17))
    )
    assert (cmd, env) == ("step", 2)
    assert data == (4, None, 17)

    cmd, env, data = decode_command(
        encode_command("run_chunk", 0, (None, 25, None, out_buffer))
    )
    assert (cmd, env) == ("run_chunk", 0)
    assert data == (None, 25, None, None)

    assert decode_command(encode_command("reset", 1, True)) == (
        "reset",
        1,
        True,
    )
    assert decode_command(encode_command("records", 3, 99)) == (
        "records",
        3,
        99,
    )
    assert decode_command(encode_command("close", 5)) == ("close", 5, None)
    assert decode_command(
        encode_command("attach", 0, {"seeds": [11, 22]})
    ) == ("attach", 0, {"seeds": [11, 22]})


def test_call_command_json_fast_path_and_pickle_fallback():
    cmd, _env, (name, args, kwargs) = decode_command(
        encode_command("call", 0, ("env_method", ("a", 2), {"flag": True}))
    )
    assert (cmd, name, args, kwargs) == (
        "call",
        "env_method",
        ("a", 2),
        {"flag": True},
    )
    # Non-JSON arguments take the flagged trusted-peer pickle path.
    arr = np.arange(3)
    _cmd, _env, (_name, args, _kwargs) = decode_command(
        encode_command("call", 0, ("env_method", (arr,), {}))
    )
    assert np.array_equal(args[0], arr)


def _packed(n: int = 4, frame_dim: int = 2) -> PackedRecords:
    return PackedRecords(
        ticks=np.arange(n, dtype=np.int64),
        frames=np.arange(n * frame_dim, dtype=np.float64).reshape(
            n, frame_dim
        ),
        actions=np.arange(n, dtype=np.int64) % 3,
        rewards=np.linspace(0.0, 1.0, n),
    )


def test_reply_round_trips_packed_records_byte_exact():
    packed = _packed()
    obs = np.linspace(0.0, 5.0, 6)
    cmd, (got_obs, reward, info, got) = decode_reply(
        encode_reply("step", (obs, 0.125, {"tick": 9}, packed))
    )
    assert cmd == "step"
    assert got_obs.tobytes() == obs.tobytes()
    assert reward == 0.125 and info == {"tick": 9}
    for name in ("ticks", "frames", "actions", "rewards"):
        assert getattr(got, name).tobytes() == getattr(
            packed, name
        ).tobytes(), name

    cmd, got = decode_reply(encode_reply("records", packed))
    assert cmd == "records" and len(got) == len(packed)
    cmd, got = decode_reply(encode_reply("records", None))
    assert cmd == "records" and got is None

    rewards = np.linspace(-1.0, 1.0, 5)
    cmd, (got_r, got_obs, got_p) = decode_reply(
        encode_reply("run_chunk", (rewards, obs, None))
    )
    assert got_r.tobytes() == rewards.tobytes()
    assert got_obs.tobytes() == obs.tobytes()
    assert got_p is None


def test_call_reply_kinds():
    for value in ({"a": 1}, [1, 2], "text", None, 3.5):
        assert decode_reply(encode_reply("call", value)) == ("call", value)
    arr = np.arange(6.0).reshape(2, 3)
    _cmd, got = decode_reply(encode_reply("call", arr))
    assert got.tobytes() == arr.tobytes() and got.shape == arr.shape
    obj = {("tuple", "key"): 1}  # not JSON-able -> pickle kind
    assert decode_reply(encode_reply("call", obj)) == ("call", obj)


def test_error_codec_carries_picklable_exceptions_whole():
    try:
        raise ValueError("knob 3 out of range")
    except ValueError as exc:
        env, text, got = decode_error(encode_error(exc, "text form", 3))
    assert env == 3 and text == "text form"
    assert isinstance(got, ValueError) and str(got) == "knob 3 out of range"


def test_error_codec_falls_back_to_text_for_unpicklable():
    class Hostage(Exception):
        def __reduce__(self):
            raise TypeError("not today")

    env, text, got = decode_error(
        encode_error(Hostage("boom"), "Hostage: boom\n[worker traceback]", 1)
    )
    assert got is None  # the blob was dropped, not sent broken
    assert env == 1 and "Hostage: boom" in text


def test_error_codec_rejects_lying_picklers():
    class Liar(Exception):
        """Pickles fine, explodes on load — must not cross as a blob."""

        def __reduce__(self):
            return (_raise_on_load, ())

    env, _text, got = decode_error(encode_error(Liar("x"), "Liar: x", 0))
    assert got is None and env == 0


def _raise_on_load():
    raise RuntimeError("surprise at unpickle time")


def test_pickle_sanity_for_liar_helper():
    # The helper really does blow up at load time (guards the test above).
    blob = pickle.dumps((_raise_on_load, ()))
    fn, args = pickle.loads(blob)
    with pytest.raises(RuntimeError):
        fn(*args)


# --------------------------------------------------------------------------
# Transports carry codec traffic end to end
# --------------------------------------------------------------------------


@pytest.mark.parametrize("kind", TRANSPORTS)
def test_codec_payloads_cross_every_medium(kind):
    a, b = make_pair(kind)
    try:
        packed = _packed(n=6, frame_dim=3)
        a.send(MSG_CMD, encode_command("records", 1, 42))
        msg_type, payload = b.recv()
        assert msg_type == MSG_CMD
        assert decode_command(payload) == ("records", 1, 42)
        b.send(0x21, encode_reply("records", packed))
        _t, payload = a.recv()
        _cmd, got = decode_reply(payload)
        assert got.frames.tobytes() == packed.frames.tobytes()
    finally:
        a.close()
        b.close()
