"""Tests for the scenario subsystem (repro.scenarios).

Events are stateless picklable data; all run state lives in the
per-environment runtime, perturbations apply at their scheduled tick
and revert exactly, and the whole layer is wired through the env
registry and the experiment spec.
"""

import pickle

import numpy as np
import pytest

from repro.cluster import ClusterConfig
from repro.env import EnvConfig, VectorEnv, make_env
from repro.env.registry import _make_sim_lustre
from repro.exp import ExperimentSpec, RunBudget, WorkloadSpec
from repro.rl import Hyperparameters
from repro.scenarios import (
    ClientChurn,
    DiskDegradation,
    LoadSpike,
    NetworkCongestionWindow,
    Scenario,
    ScenarioError,
    WorkloadPhaseShift,
    make_scenario,
    scenario_names,
)
from repro.workloads import RandomReadWrite, SequentialWrite

TINY_HP = Hyperparameters(
    hidden_layer_size=8,
    exploration_ticks=20,
    sampling_ticks_per_observation=3,
)


def tiny_workload(cluster, seed):
    return RandomReadWrite(
        cluster, read_fraction=0.1, seed=seed, instances_per_client=2
    )


def tiny_env(scenario=None, seed=0, workload_factory=tiny_workload):
    return _make_sim_lustre(
        config=EnvConfig(
            cluster=ClusterConfig(n_servers=2, n_clients=2),
            workload_factory=workload_factory,
            hp=TINY_HP,
            seed=seed,
            scenario=scenario,
        )
    )


class TestEventValidation:
    def test_at_tick_must_be_positive(self):
        with pytest.raises(ValueError, match="at_tick"):
            DiskDegradation(at_tick=0)

    def test_duration_must_be_nonnegative_or_none(self):
        with pytest.raises(ValueError, match="duration_ticks"):
            NetworkCongestionWindow(at_tick=1, duration_ticks=-1)
        # Zero-length windows are legal no-ops (fuzzer mutations can
        # shrink a window to nothing); the runtime never applies them.
        NetworkCongestionWindow(at_tick=1, duration_ticks=0)

    def test_factor_validation(self):
        with pytest.raises(ValueError):
            DiskDegradation(at_tick=1, throughput_factor=0.0)
        with pytest.raises(ValueError):
            NetworkCongestionWindow(at_tick=1, bandwidth_factor=-1.0)
        with pytest.raises(ValueError):
            LoadSpike(at_tick=1, extra_instances_per_client=0)
        with pytest.raises(ValueError):
            WorkloadPhaseShift(at_tick=1)  # no knob at all
        with pytest.raises(ValueError):
            WorkloadPhaseShift(at_tick=1, read_fraction=1.5)

    def test_events_are_frozen_and_picklable(self):
        ev = ClientChurn(at_tick=5, duration_ticks=3, client_index=1)
        with pytest.raises(AttributeError):
            ev.at_tick = 9
        assert pickle.loads(pickle.dumps(ev)) == ev


class TestScenarioObject:
    def test_rejects_non_events(self):
        with pytest.raises(TypeError):
            Scenario(name="bad", events=("not-an-event",))

    def test_add_merges_timelines(self):
        a = Scenario("a", (DiskDegradation(at_tick=3),))
        b = Scenario("b", (LoadSpike(at_tick=5, duration_ticks=2),))
        merged = a + b
        assert merged.name == "a+b"
        assert len(merged.events) == 2
        assert merged.last_tick == 7  # spike reverts at 5 + 2

    def test_compose_named(self):
        merged = Scenario.compose(
            "both",
            make_scenario("sim-lustre-degraded"),
            make_scenario("sim-lustre-churn"),
        )
        assert merged.name == "both"
        assert len(merged.events) == 1 + 3

    def test_scenario_pickles(self):
        s = make_scenario("sim-lustre-bursty")
        s2 = pickle.loads(pickle.dumps(s))
        assert s2 == s


class TestRegistry:
    def test_builtins_registered(self):
        assert {
            "sim-lustre-degraded",
            "sim-lustre-bursty",
            "sim-lustre-churn",
        } <= set(scenario_names())

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            make_scenario("nope")

    def test_factory_kwargs(self):
        s = make_scenario("sim-lustre-churn", first_tick=4, n_cycles=2)
        assert len(s.events) == 2
        assert s.events[0].at_tick == 4

    def test_every_scenario_is_an_env_name(self):
        from repro.env import env_names

        assert set(scenario_names()) <= set(env_names())

    def test_late_registered_scenario_resolves_as_env_key(self):
        """Scenario→env keys resolve at call time, not import time."""
        from repro.env import env_names
        from repro.scenarios import register_scenario
        from repro.scenarios.registry import _SCENARIOS

        name = "test-late-scenario"
        register_scenario(
            name, lambda: Scenario(name, (DiskDegradation(at_tick=4),))
        )
        try:
            assert name in env_names()
            env = make_env(
                name,
                seed=1,
                cluster=ClusterConfig(n_servers=2, n_clients=2),
                hp=TINY_HP,
                workload_factory=tiny_workload,
            )
            try:
                assert env.config.scenario.name == name
            finally:
                env.close()
        finally:
            del _SCENARIOS[name]


class TestEventEffects:
    def test_disk_degradation_applies_and_reverts(self):
        scen = Scenario(
            "t",
            (
                DiskDegradation(
                    at_tick=4,
                    duration_ticks=2,
                    throughput_factor=0.5,
                    seek_factor=2.0,
                ),
            ),
        )
        env = tiny_env(scen)
        try:
            env.reset()  # warm-up = 3 ticks; nothing fired yet
            disk = env.cluster.servers[0].disk
            read0, seek0 = disk.read_bw, disk.max_seek
            env.step(0)  # tick 4: applied
            assert disk.read_bw == pytest.approx(read0 * 0.5)
            assert disk.max_seek == pytest.approx(seek0 * 2.0)
            env.step(0)  # tick 5: still degraded
            assert env.scenario_runtime.active_count == 1
            env.step(0)  # tick 6: reverted before the interval ran
            assert disk.read_bw == read0
            assert disk.max_seek == seek0
            assert env.scenario_runtime.active_count == 0
        finally:
            env.close()

    def test_congestion_scales_every_link_and_reverts(self):
        scen = Scenario(
            "t",
            (
                NetworkCongestionWindow(
                    at_tick=4,
                    duration_ticks=1,
                    bandwidth_factor=0.25,
                    latency_factor=2.0,
                ),
            ),
        )
        env = tiny_env(scen)
        try:
            env.reset()
            fabric = env.cluster.fabric
            before = [link.bandwidth for link in fabric.links()]
            lat0 = fabric.latency
            env.step(0)
            assert fabric.latency == pytest.approx(lat0 * 2.0)
            for link, bw in zip(fabric.links(), before):
                assert link.bandwidth == pytest.approx(bw * 0.25)
            env.step(0)
            assert fabric.latency == lat0
            for link, bw in zip(fabric.links(), before):
                assert link.bandwidth == bw
        finally:
            env.close()

    def test_client_churn_pauses_and_rejoins(self):
        scen = Scenario(
            "t", (ClientChurn(at_tick=4, duration_ticks=2, client_index=0),)
        )
        env = tiny_env(scen)
        try:
            env.reset()
            wl = env.workload

            def alive(cid):
                return sum(
                    1
                    for p in wl._procs
                    if p.is_alive and f".c{cid}." in p.name
                )

            assert alive(0) == alive(1) == 2
            env.step(0)  # tick 4: client 0 leaves
            assert alive(0) == 0 and alive(1) == 2
            env.step(0)
            env.step(0)  # tick 6: client 0 rejoined
            assert alive(0) == 2 and alive(1) == 2
        finally:
            env.close()

    def test_permanent_churn_never_rejoins(self):
        scen = Scenario("t", (ClientChurn(at_tick=4, client_index=1),))
        env = tiny_env(scen)
        try:
            env.reset()
            for _ in range(4):
                env.step(0)
            assert not any(
                p.is_alive and ".c1." in p.name
                for p in env.workload._procs
            )
        finally:
            env.close()

    def test_phase_shift_mutates_live_workload(self):
        scen = Scenario(
            "t",
            (
                WorkloadPhaseShift(
                    at_tick=4, duration_ticks=2, read_fraction=0.9
                ),
            ),
        )
        env = tiny_env(scen)
        try:
            env.reset()
            assert env.workload.read_fraction == 0.1
            env.step(0)
            assert env.workload.read_fraction == 0.9
            env.step(0)
            env.step(0)
            assert env.workload.read_fraction == 0.1  # reverted
        finally:
            env.close()

    def test_phase_shift_rejects_knobless_workload(self):
        def seq_workload(cluster, seed):
            return SequentialWrite(cluster, seed=seed, instances_per_client=1)

        scen = Scenario(
            "t", (WorkloadPhaseShift(at_tick=4, read_fraction=0.5),)
        )
        env = tiny_env(scen, workload_factory=seq_workload)
        try:
            env.reset()
            with pytest.raises(ScenarioError, match="read_fraction"):
                env.step(0)
        finally:
            env.close()

    def test_spike_skips_churned_out_clients(self):
        """A LoadSpike during a churn absence must not start fresh
        application loops on the absent client."""
        scen = Scenario(
            "t",
            (
                ClientChurn(at_tick=4, duration_ticks=4, client_index=0),
                LoadSpike(
                    at_tick=5, duration_ticks=2, extra_instances_per_client=1
                ),
            ),
        )
        env = tiny_env(scen)
        try:
            env.reset()
            wl = env.workload
            env.step(0)  # tick 4: client 0 leaves
            env.step(0)  # tick 5: spike — client 1 only
            assert not any(
                p.is_alive and ".c0." in p.name for p in wl._procs
            )
            assert any(
                p.is_alive and ".c1.s" in p.name for p in wl._procs
            )
        finally:
            env.close()

    def test_churn_flag_resets_on_workload_restart(self):
        scen = Scenario("t", (ClientChurn(at_tick=4, client_index=0),))
        env = tiny_env(scen)
        try:
            env.reset()
            env.step(0)  # tick 4: pause
            wl = env.workload
            assert wl.client_paused(0)
            wl.stop()
            assert not wl.client_paused(0)  # restartable: churn state gone
        finally:
            env.close()

    def test_load_spike_adds_then_removes_instances(self):
        scen = Scenario(
            "t",
            (
                LoadSpike(
                    at_tick=4, duration_ticks=2, extra_instances_per_client=1
                ),
            ),
        )
        env = tiny_env(scen)
        try:
            env.reset()
            wl = env.workload

            def alive():
                return sum(1 for p in wl._procs if p.is_alive)

            base = alive()
            env.step(0)  # spike: +1 per client on 2 clients
            assert alive() == base + 2
            env.step(0)
            env.step(0)  # spike ended
            assert alive() == base
        finally:
            env.close()


class TestOverlappingWindows:
    def test_overlapping_congestion_windows_unstack_exactly(self):
        """Regression: overlapping windows used to restore a saved
        mid-overlap absolute, leaving the fabric permanently degraded.
        Inverse scaling composes in any order."""
        scen = Scenario(
            "t",
            (
                NetworkCongestionWindow(
                    at_tick=4, duration_ticks=4, bandwidth_factor=0.5
                ),
                NetworkCongestionWindow(
                    at_tick=6, duration_ticks=4, bandwidth_factor=0.25
                ),
            ),
        )
        env = tiny_env(scen)
        try:
            env.reset()
            fabric = env.cluster.fabric
            bw0 = fabric.nic_bw
            env.step(0)  # tick 4: first window
            assert fabric.nic_bw == bw0 * 0.5
            env.step(0)
            env.step(0)  # tick 6: overlap
            assert fabric.nic_bw == bw0 * 0.5 * 0.25
            env.step(0)
            env.step(0)  # tick 8: first reverted, second still active
            assert fabric.nic_bw == bw0 * 0.25
            env.step(0)
            env.step(0)  # tick 10: all clear, exactly restored
            assert fabric.nic_bw == bw0
            assert env.scenario_runtime.active_count == 0
        finally:
            env.close()

    def test_overlapping_disk_windows_unstack_exactly(self):
        scen = Scenario(
            "t",
            (
                DiskDegradation(
                    at_tick=4, duration_ticks=4, throughput_factor=0.5
                ),
                DiskDegradation(
                    at_tick=5, duration_ticks=4, throughput_factor=0.5
                ),
            ),
        )
        env = tiny_env(scen)
        try:
            env.reset()
            disk = env.cluster.servers[0].disk
            read0 = disk.read_bw
            env.step(0)
            env.step(0)  # tick 5: both active
            assert disk.read_bw == read0 * 0.25
            for _ in range(4):  # through tick 9: both reverted
                env.step(0)
            assert disk.read_bw == read0
        finally:
            env.close()

    @pytest.mark.parametrize("second_tick", [4, 5])
    def test_overlapping_churn_on_one_client_rejoins_once(self, second_tick):
        """Staggered AND same-tick overlaps: interrupts deliver lazily,
        so ownership must come from the synchronous paused flag — a
        same-tick pair used to double the client's instances."""
        scen = Scenario(
            "t",
            (
                ClientChurn(at_tick=4, duration_ticks=3, client_index=0),
                ClientChurn(
                    at_tick=second_tick, duration_ticks=3, client_index=0
                ),
            ),
        )
        env = tiny_env(scen)
        try:
            env.reset()
            wl = env.workload
            for _ in range(5):  # through tick 8: both windows closed
                env.step(0)
            alive = sum(
                1 for p in wl._procs if p.is_alive and ".c0." in p.name
            )
            assert alive == wl.instances_per_client  # not doubled
        finally:
            env.close()


class TestRuntimeOrdering:
    def test_back_to_back_windows_hand_over_cleanly(self):
        """A window ending exactly where the next begins: the revert
        runs before the next apply, so factors never compound."""
        scen = Scenario(
            "t",
            (
                NetworkCongestionWindow(
                    at_tick=4, duration_ticks=2, bandwidth_factor=0.5
                ),
                NetworkCongestionWindow(
                    at_tick=6, duration_ticks=2, bandwidth_factor=0.5
                ),
            ),
        )
        env = tiny_env(scen)
        try:
            env.reset()
            fabric = env.cluster.fabric
            bw0 = fabric.nic_bw
            for _ in range(4):  # ticks 4..7
                env.step(0)
                assert fabric.nic_bw == pytest.approx(bw0 * 0.5)
            env.step(0)  # tick 8: second window reverted
            assert fabric.nic_bw == bw0
            kinds = [(t, a) for t, a, _e in env.scenario_runtime.log]
            assert kinds == [
                (4, "apply"),
                (6, "revert"),
                (6, "apply"),
                (8, "revert"),
            ]
        finally:
            env.close()


class TestFuzzedEdgeCases:
    """Degenerate timelines the fuzzer generates (repro.scenarios.fuzz)
    must no-op or unwind cleanly: zero-length windows never apply,
    events scheduled past the run horizon never leak state, and
    randomized same-tick window stacks return every factor — object
    graph and vec arrays alike — to baseline after the last revert."""

    def _vec_fleet(self, scen, n_envs=2):
        return make_env(
            "sim-lustre-vec",
            seed=3,
            n_envs=n_envs,
            scenario=scen,
            cluster=ClusterConfig(n_servers=2, n_clients=2),
            hp=TINY_HP,
            workload_factory=tiny_workload,
        )

    def test_zero_length_window_is_a_pure_noop(self):
        scen = Scenario(
            "t",
            (
                NetworkCongestionWindow(
                    at_tick=4, duration_ticks=0, bandwidth_factor=0.1
                ),
                DiskDegradation(
                    at_tick=5, duration_ticks=0, throughput_factor=0.2
                ),
            ),
        )
        env = tiny_env(scen)
        try:
            env.reset()
            fabric = env.cluster.fabric
            disk = env.cluster.servers[0].disk
            bw0, read0 = fabric.nic_bw, disk.read_bw
            for _ in range(4):  # through tick 7, past both fire ticks
                env.step(0)
                assert fabric.nic_bw == bw0
                assert disk.read_bw == read0
            # An empty window [t, t) never applies: no draws, no log.
            assert not env.scenario_runtime.log
            assert env.scenario_runtime.active_count == 0
        finally:
            env.close()

    def test_zero_length_window_noop_on_vec_factor_arrays(self):
        scen = Scenario(
            "t",
            (
                NetworkCongestionWindow(
                    at_tick=4, duration_ticks=0, bandwidth_factor=0.05
                ),
                DiskDegradation(
                    at_tick=4, duration_ticks=0, throughput_factor=0.1
                ),
            ),
        )
        fleet = self._vec_fleet(scen)
        try:
            fleet.reset()
            for t in range(4):
                fleet.step([t % fleet.n_actions] * fleet.n_envs)
            st = fleet.state
            assert np.array_equal(st.net_bw_f, np.ones_like(st.net_bw_f))
            assert np.array_equal(
                st.disk_bw_f, np.ones_like(st.disk_bw_f)
            )
            for rt in fleet._runtimes:
                assert not rt.log
                assert rt.active_count == 0
        finally:
            fleet.close()

    def test_past_horizon_events_noop_cleanly(self):
        # The fuzzer's generator draws at_tick over the *search*
        # horizon (110), but scoring runs are far shorter — events the
        # run never reaches must leave no trace on either backend.
        scen = Scenario(
            "t",
            (
                DiskDegradation(
                    at_tick=50, duration_ticks=5, throughput_factor=0.3
                ),
                NetworkCongestionWindow(
                    at_tick=80, duration_ticks=2, bandwidth_factor=0.5
                ),
                ClientChurn(at_tick=60, duration_ticks=None, client_index=0),
            ),
        )
        env = tiny_env(scen)
        try:
            env.reset()
            fabric = env.cluster.fabric
            disk = env.cluster.servers[0].disk
            bw0, read0 = fabric.nic_bw, disk.read_bw
            for _ in range(6):
                env.step(0)
            assert fabric.nic_bw == bw0
            assert disk.read_bw == read0
            assert not env.scenario_runtime.log
            assert env.scenario_runtime.active_count == 0
        finally:
            env.close()
        fleet = self._vec_fleet(scen)
        try:
            fleet.reset()
            for t in range(6):
                fleet.step([t % fleet.n_actions] * fleet.n_envs)
            st = fleet.state
            assert np.array_equal(st.net_bw_f, np.ones_like(st.net_bw_f))
            assert np.array_equal(
                st.disk_bw_f, np.ones_like(st.disk_bw_f)
            )
            for rt in fleet._runtimes:
                assert not rt.log
        finally:
            fleet.close()

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_randomized_same_tick_stacks_unwind_to_baseline(self, seed):
        """Randomized overlapping windows, with a forced same-tick
        apply/apply stack and a forced revert-tick apply: once the last
        window closes, every factor must be back at baseline (allclose:
        inverse scaling round-trips through float multiplication)."""
        rng = np.random.default_rng(seed)

        def window(at, dur):
            if rng.random() < 0.5:
                return NetworkCongestionWindow(
                    at_tick=at,
                    duration_ticks=dur,
                    bandwidth_factor=round(float(rng.uniform(0.1, 0.9)), 3),
                    latency_factor=round(float(rng.uniform(1.0, 4.0)), 3),
                )
            return DiskDegradation(
                at_tick=at,
                duration_ticks=dur,
                server_index=int(rng.integers(0, 2)),
                throughput_factor=round(float(rng.uniform(0.1, 0.9)), 3),
                seek_factor=round(float(rng.uniform(1.0, 3.0)), 3),
            )

        events = [
            window(int(rng.integers(4, 9)), int(rng.integers(1, 5)))
            for _ in range(int(rng.integers(3, 6)))
        ]
        first = events[0]
        # Same-tick apply/apply stack on the first window's fire tick,
        # and an apply scheduled exactly on its revert tick (the
        # runtime reverts before it applies — handover, not compound).
        events.append(window(first.at_tick, int(rng.integers(1, 4))))
        events.append(
            window(
                first.at_tick + first.duration_ticks,
                int(rng.integers(1, 4)),
            )
        )
        scen = Scenario("t", tuple(events))
        last_tick = max(e.at_tick + e.duration_ticks for e in events)

        env = tiny_env(scen)
        try:
            env.reset()
            fabric = env.cluster.fabric
            disks = [s.disk for s in env.cluster.servers]
            base = (
                fabric.nic_bw,
                fabric.latency,
                [(d.read_bw, d.min_seek, d.max_seek) for d in disks],
            )
            for _ in range(last_tick + 2):
                env.step(0)
            assert fabric.nic_bw == pytest.approx(base[0])
            assert fabric.latency == pytest.approx(base[1])
            for d, (read0, lo0, hi0) in zip(disks, base[2]):
                assert d.read_bw == pytest.approx(read0)
                assert d.min_seek == pytest.approx(lo0)
                assert d.max_seek == pytest.approx(hi0)
            assert env.scenario_runtime.active_count == 0
            kinds = [a for _t, a, _e in env.scenario_runtime.log]
            assert kinds.count("apply") == len(events)
            assert kinds.count("revert") == len(events)
        finally:
            env.close()

        fleet = self._vec_fleet(scen)
        try:
            fleet.reset()
            for t in range(last_tick + 2):
                fleet.step([t % fleet.n_actions] * fleet.n_envs)
            st = fleet.state
            for arr in (
                st.net_bw_f,
                st.net_lat_f,
                st.disk_bw_f,
                st.disk_seek_f,
            ):
                assert np.allclose(arr, 1.0), (
                    f"vec factor arrays off baseline after last revert "
                    f"(seed {seed}): {arr}"
                )
            for rt in fleet._runtimes:
                assert rt.active_count == 0
        finally:
            fleet.close()


class TestDeterminismContracts:
    N_TICKS = 6

    def _rollout(self, env):
        try:
            out = [env.reset().copy()]
            for t in range(self.N_TICKS):
                obs, reward, _info = env.step(t % env.n_actions)
                out.append(obs.copy())
                out.append(reward)
            return out
        finally:
            env.close()

    def test_same_seed_same_trajectory(self):
        scen = make_scenario(
            "sim-lustre-churn", first_tick=4, period=4, absence_ticks=2
        )
        a = self._rollout(tiny_env(scen, seed=13))
        b = self._rollout(tiny_env(scen, seed=13))
        for x, y in zip(a, b):
            assert np.array_equal(x, y)

    def test_scenario_changes_the_trajectory(self):
        scen = make_scenario("sim-lustre-degraded", start_tick=4)
        plain = self._rollout(tiny_env(None, seed=13))
        perturbed = self._rollout(tiny_env(scen, seed=13))
        assert not all(
            np.array_equal(x, y) for x, y in zip(plain, perturbed)
        )

    def test_named_env_equals_scenario_kwarg(self):
        kw = dict(
            cluster=ClusterConfig(n_servers=2, n_clients=2),
            hp=TINY_HP,
            workload_factory=tiny_workload,
            seed=5,
        )
        a = self._rollout(
            make_env(
                "sim-lustre-degraded",
                scenario_kwargs=dict(start_tick=4),
                **kw,
            )
        )
        b = self._rollout(
            make_env(
                "sim-lustre",
                scenario="sim-lustre-degraded",
                scenario_kwargs=dict(start_tick=4),
                **kw,
            )
        )
        for x, y in zip(a, b):
            assert np.array_equal(x, y)

    def test_env0_stream_independent_of_fleet_size(self):
        """Replica i's perturbation stream depends on (base_seed, i),
        never on how many replicas run beside it."""

        def env0_rows(n):
            venv = VectorEnv.from_config(
                EnvConfig(
                    cluster=ClusterConfig(n_servers=2, n_clients=2),
                    workload_factory=tiny_workload,
                    hp=TINY_HP,
                    seed=21,
                    scenario=make_scenario(
                        "sim-lustre-churn",
                        first_tick=4,
                        period=4,
                        absence_ticks=2,
                        n_cycles=2,
                    ),
                ),
                n,
                tick_stride=256,
            )
            try:
                rows = [venv.reset()[0].copy()]
                for _ in range(4):
                    obs, rewards, _ = venv.step([0] * n)
                    rows.append(obs[0].copy())
                    rows.append(float(rewards[0]))
                return rows
            finally:
                venv.close()

        for x, y in zip(env0_rows(2), env0_rows(3)):
            assert np.array_equal(x, y)


class TestRegistryArgumentHandling:
    def test_scenario_kwargs_without_scenario_rejected(self):
        with pytest.raises(ValueError, match="scenario_kwargs"):
            make_env(
                "sim-lustre",
                workload_factory=tiny_workload,
                scenario_kwargs={"start_tick": 3},
            )

    def test_scenario_object_with_kwargs_rejected(self):
        with pytest.raises(ValueError, match="already fully built"):
            make_env(
                "sim-lustre",
                workload_factory=tiny_workload,
                scenario=make_scenario("sim-lustre-degraded"),
                scenario_kwargs={"start_tick": 3},
            )

    def test_config_scenario_never_silently_overwritten(self):
        cfg = EnvConfig(
            cluster=ClusterConfig(n_servers=2, n_clients=2),
            workload_factory=tiny_workload,
            hp=TINY_HP,
            scenario=make_scenario("sim-lustre-churn"),
        )
        with pytest.raises(ValueError, match="refusing to overwrite"):
            make_env("sim-lustre-degraded", config=cfg)

    def test_scenario_kwarg_on_sim_lustre_defaults_workload(self):
        """The README composition example: a scenario= kwarg on plain
        "sim-lustre" gets the default workload, same as named keys."""
        both = make_scenario("sim-lustre-degraded") + make_scenario(
            "sim-lustre-bursty"
        )
        env = make_env(
            "sim-lustre",
            scenario=both,
            seed=0,
            cluster=ClusterConfig(n_servers=2, n_clients=2),
            hp=TINY_HP,
        )
        try:
            assert env.config.workload_factory is not None
            assert env.config.scenario.name == (
                "sim-lustre-degraded+sim-lustre-bursty"
            )
        finally:
            env.close()

    def test_default_workload_fills_in_for_named_scenario_env(self):
        env = make_env(
            "sim-lustre-degraded",
            seed=3,
            cluster=ClusterConfig(n_servers=2, n_clients=2),
            hp=TINY_HP,
        )
        try:
            assert env.config.workload_factory is not None
            env.reset()
            assert isinstance(env.workload, RandomReadWrite)
        finally:
            env.close()


class TestSpecIntegration:
    def _spec(self, **overrides):
        defaults = dict(
            tuner="capes",
            scenario="sim-lustre-degraded",
            scenario_kwargs=dict(start_tick=4),
            cluster=ClusterConfig(n_servers=2, n_clients=2),
            workload=WorkloadSpec(
                "random_rw",
                {"read_fraction": 0.1, "instances_per_client": 2},
            ),
            hp=TINY_HP,
            budget=RunBudget(train_ticks=5, eval_ticks=3, epoch_ticks=2),
        )
        defaults.update(overrides)
        return ExperimentSpec(**defaults)

    def test_spec_attaches_registered_scenario(self):
        cfg = self._spec().env_config()
        assert cfg.scenario is not None
        assert cfg.scenario.name == "sim-lustre-degraded"

    def test_label_scenario_stays_a_label(self):
        cfg = self._spec(scenario="1:9", scenario_kwargs={}).env_config()
        assert cfg.scenario is None

    def test_scenario_kwargs_on_label_rejected(self):
        spec = self._spec(scenario="just-a-label")
        with pytest.raises(KeyError, match="not a\n?.*registered scenario"):
            spec.env_config()

    def test_spec_round_trips_and_pickles(self):
        spec = self._spec()
        d = spec.to_dict()
        assert d["scenario"] == "sim-lustre-degraded"
        assert d["scenario_kwargs"] == {"start_tick": 4}
        clone = pickle.loads(pickle.dumps(spec))
        assert clone.scenario_object() == spec.scenario_object()

    def test_spec_id_uses_scenario(self):
        assert self._spec(seed=3).spec_id == (
            "sim-lustre-degraded/capes/seed3"
        )

    def test_scenario_on_foreign_env_rejected(self):
        spec = self._spec(env="other-backend")
        with pytest.raises(ValueError, match="sim-lustre"):
            spec.build_env()

    def test_scenario_named_env_honors_spec_config(self):
        """env='sim-lustre-degraded' must run on the spec's configured
        cluster (re-routed through the sim-lustre config path), not on
        EnvConfig defaults."""
        spec = self._spec(
            env="sim-lustre-degraded",
            scenario="",
            scenario_kwargs={},
        )
        env = spec.build_env()
        try:
            assert env.config.cluster.n_servers == 2  # from the spec
            assert env.config.hp.hidden_layer_size == 8
            assert env.config.scenario.name == "sim-lustre-degraded"
        finally:
            env.close()

    def test_env_and_scenario_naming_different_scenarios_rejected(self):
        spec = self._spec(env="sim-lustre-bursty")  # scenario=...-degraded
        with pytest.raises(ValueError, match="pick one"):
            spec.build_env()

    def test_scenario_named_env_applies_bare_scenario_kwargs(self):
        """Naming the scenario via env= alone still lets
        scenario_kwargs parametrize it — no redundant scenario= needed."""
        spec = self._spec(
            env="sim-lustre-degraded",
            scenario="",
            scenario_kwargs=dict(start_tick=7),
        )
        env = spec.build_env()
        try:
            assert env.config.scenario.events[0].at_tick == 7
        finally:
            env.close()

    def test_env_kwargs_on_sim_lustre_rejected(self):
        spec = self._spec(env_kwargs={"drop_probability": 0.1})
        with pytest.raises(ValueError, match="env_kwargs"):
            spec.build_env()

    def test_grid_workloads_axis_rejects_registered_scenario(self):
        """A workloads axis relabels the scenario field; it must not
        silently drop the base spec's perturbation timeline."""
        from repro.exp import grid

        base = self._spec()
        with pytest.raises(ValueError, match="workloads axis"):
            grid(
                base,
                workloads=[("rw", base.workload)],
            )
        # Without the axis the registered scenario expands intact.
        specs = grid(base, seeds=[0, 1])
        assert all(s.scenario == "sim-lustre-degraded" for s in specs)

    def test_end_to_end_run(self):
        from repro.exp import execute_spec

        result = execute_spec(self._spec())
        assert result.scenario == "sim-lustre-degraded"
        assert result.final.tuned_rewards.shape == (3,)

    def test_vector_end_to_end_run(self):
        from repro.exp import execute_spec

        a = execute_spec(self._spec(n_envs=2, vector_backend="serial"))
        b = execute_spec(self._spec(n_envs=2, vector_backend="fork"))
        assert np.array_equal(a.final.tuned_rewards, b.final.tuned_rewards)
