"""Tests for the §4.2 background-noise traffic generator."""

import numpy as np
import pytest

from repro.cluster import Cluster, ClusterConfig, NoiseConfig, NoiseTraffic
from repro.env import EnvConfig, StorageTuningEnv
from repro.rl import Hyperparameters
from repro.sim import Simulator
from repro.workloads import RandomReadWrite

FAST_HP = Hyperparameters(
    hidden_layer_size=8, sampling_ticks_per_observation=3, exploration_ticks=20
)


class TestNoiseTraffic:
    def make(self, **cfg):
        sim = Simulator()
        cluster = Cluster(sim, ClusterConfig(n_servers=2, n_clients=2))
        noise = NoiseTraffic(cluster, NoiseConfig(**cfg), seed=0)
        return sim, cluster, noise

    def test_probes_arrive_at_expected_rate(self):
        sim, cluster, noise = self.make(probe_rate=5.0, bulk_rate=0.0)
        sim.run(until=60.0)
        # Poisson(5/s × 60 s): within generous 3-sigma bounds
        assert 200 <= noise.probes_sent <= 400

    def test_bulk_transfers_occur(self):
        sim, cluster, noise = self.make(probe_rate=0.0, bulk_rate=1.0)
        sim.run(until=30.0)
        assert noise.bulk_sent > 10

    def test_zero_rates_spawn_nothing(self):
        sim, cluster, noise = self.make(probe_rate=0.0, bulk_rate=0.0)
        sim.run(until=5.0)
        assert noise.probes_sent == 0 and noise.bulk_sent == 0

    def test_noise_consumes_real_link_capacity(self):
        sim, cluster, noise = self.make(probe_rate=0.0, bulk_rate=5.0)
        sim.run(until=20.0)
        ingress_bytes = sum(
            cluster.fabric.ingress_link(s.node_id).stats.bytes
            for s in cluster.servers
        ) + sum(
            cluster.fabric.ingress_link(c.node_id).stats.bytes
            for c in cluster.clients
        )
        assert ingress_bytes > 0

    def test_deterministic_with_seed(self):
        def run(seed):
            sim = Simulator()
            cluster = Cluster(sim, ClusterConfig(n_servers=1, n_clients=1))
            noise = NoiseTraffic(cluster, seed=seed)
            sim.run(until=30.0)
            return (noise.probes_sent, noise.bulk_sent)

        assert run(4) == run(4)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            NoiseConfig(probe_rate=-1.0)
        with pytest.raises(ValueError):
            NoiseConfig(probe_bytes=0)


class TestNoiseInEnv:
    def make_env(self, noise):
        return StorageTuningEnv(
            EnvConfig(
                cluster=ClusterConfig(n_servers=2, n_clients=2),
                workload_factory=lambda c, s: RandomReadWrite(
                    c, read_fraction=0.1, instances_per_client=2, seed=s
                ),
                hp=FAST_HP,
                enable_noise=noise,
                seed=0,
            )
        )

    def test_disabled_by_default(self):
        env = self.make_env(False)
        env.reset()
        assert env.noise is None

    def test_enabled_injects_traffic(self):
        env = self.make_env(True)
        env.reset()
        env.run_ticks(20)
        assert env.noise is not None
        assert env.noise.probes_sent > 0

    def test_training_robust_to_noise(self):
        from repro.core import CapesSession

        env = self.make_env(True)
        session = CapesSession(env, seed=0)
        result = session.train(12)
        assert np.isfinite(result.losses).all()
        assert result.rewards.sum() > 0
