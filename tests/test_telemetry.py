"""Tests for PIs, wire protocol, monitoring agent, reward objectives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster, ClusterConfig
from repro.sim import Simulator
from repro.telemetry import (
    OSC_INDICATORS,
    CombinedObjective,
    DifferentialDecoder,
    DifferentialEncoder,
    LatencyObjective,
    MonitoringAgent,
    ThroughputObjective,
    TickRewardSource,
    client_frame,
    frame_labels,
    frame_width,
    osc_frame,
)
from repro.util.units import KiB, MiB


def tiny_cluster():
    sim = Simulator()
    cluster = Cluster(sim, ClusterConfig(n_servers=2, n_clients=1))
    return sim, cluster


class TestIndicators:
    def test_frame_width(self):
        assert frame_width(4) == 4 * len(OSC_INDICATORS)
        # The paper's testbed: 4 servers -> 44 PIs per client (Table 2).
        assert frame_width(4) == 44

    def test_labels_match_width(self):
        assert len(frame_labels(3)) == frame_width(3)
        assert frame_labels(2)[0] == "osc0.max_rpcs_in_flight"

    def test_osc_frame_shape_and_finite(self):
        sim, cluster = tiny_cluster()
        frame = osc_frame(cluster.clients[0].oscs[0], 1.0)
        assert frame.shape == (len(OSC_INDICATORS),)
        assert np.isfinite(frame).all()

    def test_client_frame_concatenates_oscs(self):
        sim, cluster = tiny_cluster()
        frame = client_frame(cluster.clients[0], 1.0)
        assert frame.shape == (frame_width(2),)

    def test_throughput_indicator_reads_tick_delta(self):
        sim, cluster = tiny_cluster()
        fs = cluster.fs(0)

        def app():
            yield from fs.read(obj_id=1, offset=0, size=64 * KiB)

        sim.spawn(app())
        sim.run()
        osc_ids = sorted(cluster.clients[0].oscs)
        frames = client_frame(cluster.clients[0], 1.0)
        read_slot = [i for i, l in enumerate(frame_labels(2)) if "read_tput" in l]
        total_scaled = sum(frames[i] for i in read_slot)
        assert total_scaled == pytest.approx(64 * KiB / (50 * MiB))
        # Second sample sees no new bytes: delta semantics.
        frames2 = client_frame(cluster.clients[0], 1.0)
        assert sum(frames2[i] for i in read_slot) == 0.0

    def test_window_indicator_tracks_tuning(self):
        sim, cluster = tiny_cluster()
        cluster.set_max_rpcs_in_flight(16)
        frame = osc_frame(cluster.clients[0].oscs[0], 1.0)
        assert frame[0] == pytest.approx(16 / 16.0)


class TestWireProtocol:
    def test_roundtrip_first_message_full(self):
        enc = DifferentialEncoder(5)
        dec = DifferentialDecoder(5)
        frame = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        tick, out = dec.decode(enc.encode(7, frame))
        assert tick == 7
        np.testing.assert_allclose(out, frame, rtol=1e-6)

    def test_unchanged_values_not_resent(self):
        enc = DifferentialEncoder(4)
        frame = np.array([1.0, 2.0, 3.0, 4.0])
        enc.encode(1, frame)
        frame2 = frame.copy()
        frame2[2] = 9.0
        enc.encode(2, frame2)
        assert enc.stats.entries_sent == 4 + 1

    def test_roundtrip_through_changes(self):
        enc = DifferentialEncoder(3)
        dec = DifferentialDecoder(3)
        rng = np.random.default_rng(0)
        state = rng.normal(size=3)
        for tick in range(20):
            if tick % 3 == 0:
                state = state + rng.normal(size=3) * (rng.random(3) > 0.5)
            got_tick, got = dec.decode(enc.encode(tick, state))
            assert got_tick == tick
            np.testing.assert_allclose(got, state.astype(np.float32), rtol=1e-6)

    def test_compression_helps_on_stable_frames(self):
        enc = DifferentialEncoder(100)
        frame = np.ones(100)
        enc.encode(0, frame)
        for t in range(1, 50):
            enc.encode(t, frame)
        # steady-state messages carry zero entries -> tiny
        assert enc.stats.mean_message_size < 60

    def test_malformed_message_rejected(self):
        dec = DifferentialDecoder(4)
        with pytest.raises(Exception):
            dec.decode(b"garbage")

    def test_index_out_of_range_rejected(self):
        enc = DifferentialEncoder(10)
        msg = enc.encode(0, np.arange(10.0))
        dec = DifferentialDecoder(4)  # narrower than sender
        with pytest.raises(ValueError):
            dec.decode(msg)

    def test_encoder_shape_check(self):
        enc = DifferentialEncoder(4)
        with pytest.raises(ValueError):
            enc.encode(0, np.zeros(5))

    def test_reset_forces_full_resend(self):
        enc = DifferentialEncoder(4)
        frame = np.arange(4.0)
        enc.encode(0, frame)
        enc.reset()
        enc.encode(1, frame)
        assert enc.stats.entries_sent == 8

    @settings(max_examples=25, deadline=None)
    @given(
        frames=st.lists(
            st.lists(
                st.floats(min_value=-1e3, max_value=1e3, width=32),
                min_size=6,
                max_size=6,
            ),
            min_size=1,
            max_size=12,
        )
    )
    def test_decoder_always_reconstructs(self, frames):
        """Property: decode(encode(x)) == float32(x) for any sequence."""
        enc = DifferentialEncoder(6)
        dec = DifferentialDecoder(6)
        for t, f in enumerate(frames):
            arr = np.array(f, dtype=np.float64)
            _tick, got = dec.decode(enc.encode(t, arr))
            # Sub-epsilon changes are deliberately not transmitted, so
            # reconstruction is exact only up to the change threshold.
            np.testing.assert_allclose(
                got.astype(np.float32),
                arr.astype(np.float32),
                atol=2e-7,
                rtol=0,
            )


class TestMonitoringAgent:
    def test_pull_mode_samples_on_demand(self):
        sim, cluster = tiny_cluster()
        inbox = []
        agent = MonitoringAgent(
            sim,
            cluster.clients[0],
            sink=lambda cid, msg: inbox.append((cid, msg)),
            autostart=False,
        )
        msg = agent.sample_once(1)
        assert isinstance(msg, bytes) and len(msg) > 0
        assert inbox == []  # pull mode does not auto-send

    def test_push_mode_sends_every_tick(self):
        sim, cluster = tiny_cluster()
        inbox = []
        MonitoringAgent(
            sim,
            cluster.clients[0],
            sink=lambda cid, msg: inbox.append(cid),
            tick_length=1.0,
        )
        # The agent loop is perpetual: run to a bound, not to quiescence.
        sim.run(until=5.5)
        assert len(inbox) == 5

    def test_invalid_drop_probability(self):
        sim, cluster = tiny_cluster()
        with pytest.raises(ValueError):
            MonitoringAgent(
                sim, cluster.clients[0], sink=lambda c, m: None, drop_probability=1.0
            )


class TestObjectives:
    def test_throughput_objective_measures_tick_bytes(self):
        sim, cluster = tiny_cluster()
        obj = ThroughputObjective(scale=MiB)
        src = TickRewardSource(cluster, obj)
        fs = cluster.fs(0)

        def app():
            yield from fs.read(obj_id=1, offset=0, size=2 * MiB)

        sim.spawn(app())
        sim.run()
        assert src.sample() == pytest.approx(2.0)
        assert src.sample() == 0.0  # nothing new
        assert src.history == [pytest.approx(2.0), 0.0]

    def test_latency_objective_negative_under_load(self):
        sim, cluster = tiny_cluster()
        obj = LatencyObjective()
        base = obj.score(cluster, 1.0)
        cluster.fabric.send("client-0", "server-0", 20 * MiB, None)
        loaded = obj.score(cluster, 1.0)
        assert loaded < base <= 0.0

    def test_combined_objective_weights(self):
        sim, cluster = tiny_cluster()
        t = ThroughputObjective(scale=MiB)
        l = LatencyObjective()
        combo = CombinedObjective([(t, 1.0), (l, 2.0)])
        expected = t.score(cluster, 1.0) + 2.0 * l.score(cluster, 1.0)
        # note: ThroughputObjective.delta consumed by first call; rebuild
        combo2 = CombinedObjective([(ThroughputObjective(scale=MiB), 1.0), (l, 2.0)])
        assert combo2.score(cluster, 1.0) == pytest.approx(
            0.0 + 2.0 * l.score(cluster, 1.0)
        )

    def test_combined_requires_parts(self):
        with pytest.raises(ValueError):
            CombinedObjective([])
