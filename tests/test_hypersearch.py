"""Tests for the hyperparameter grid/random search (§6 future work)."""

import pytest

from repro.rl import GridSearch, Hyperparameters, RandomSampler


def base_hp():
    return Hyperparameters(hidden_layer_size=8)


class TestGridSearch:
    def test_size_is_cross_product(self):
        gs = GridSearch(
            base_hp(),
            {"adam_learning_rate": [1e-4, 1e-3], "discount_rate": [0.9, 0.95, 0.99]},
        )
        assert gs.size == 6
        assert len(list(gs.configurations())) == 6

    def test_configurations_override_fields(self):
        gs = GridSearch(base_hp(), {"minibatch_size": [8, 64]})
        sizes = {hp.minibatch_size for hp in gs.configurations()}
        assert sizes == {8, 64}
        # untouched fields keep base values
        for hp in gs.configurations():
            assert hp.hidden_layer_size == 8

    def test_run_returns_argmax(self):
        gs = GridSearch(
            base_hp(), {"discount_rate": [0.5, 0.9, 0.99]}
        )
        result = gs.run(lambda hp: hp.discount_rate)  # higher γ scores more
        assert result.best.discount_rate == 0.99
        assert result.best_score == 0.99
        assert result.n_evaluated == 3

    def test_trace_records_all_points(self):
        gs = GridSearch(base_hp(), {"minibatch_size": [8, 16]})
        result = gs.run(lambda hp: -hp.minibatch_size)
        assert [p["minibatch_size"] for p, _s in result.trace] == [8, 16]
        assert result.best.minibatch_size == 8

    def test_unknown_field_rejected(self):
        with pytest.raises(KeyError):
            GridSearch(base_hp(), {"bogus": [1]})

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            GridSearch(base_hp(), {})
        with pytest.raises(ValueError):
            GridSearch(base_hp(), {"minibatch_size": []})

    def test_invalid_combinations_surface_validation(self):
        gs = GridSearch(base_hp(), {"discount_rate": [1.5]})
        with pytest.raises(ValueError):
            list(gs.configurations())


class TestRandomSampler:
    def test_samples_come_from_grid(self):
        rs = RandomSampler(
            base_hp(), {"minibatch_size": [8, 16, 32]}, seed=0
        )
        for _ in range(20):
            assert rs.sample().minibatch_size in (8, 16, 32)

    def test_run_respects_budget(self):
        rs = RandomSampler(base_hp(), {"minibatch_size": [8, 16]}, seed=1)
        result = rs.run(lambda hp: float(hp.minibatch_size), budget=7)
        assert result.n_evaluated == 7
        assert result.best_score in (8.0, 16.0)

    def test_deterministic_with_seed(self):
        def run(seed):
            rs = RandomSampler(
                base_hp(), {"minibatch_size": [8, 16, 32]}, seed=seed
            )
            return [rs.sample().minibatch_size for _ in range(10)]

        assert run(5) == run(5)
        assert run(5) != run(6)

    def test_budget_validation(self):
        rs = RandomSampler(base_hp(), {"minibatch_size": [8]}, seed=0)
        with pytest.raises(ValueError):
            rs.run(lambda hp: 0.0, budget=0)
