"""Behavioural contract of the control-plane daemon (repro.serve).

Everything here runs the real asyncio server on the test's own event
loop (no threads, no subprocesses — see test_serve_shutdown.py for the
signal-driven lifecycle), talking to it over real TCP sockets:

- the acceptance golden: the daemon's greedy decisions are identical
  to an inline agent fed the same frames through the same float32 wire
  rounding (same seed + frames ⇒ same actions);
- kill-and-reconnect: a client whose connection dies and whose encoder
  went stale gets a full-frame RESYNC and the current-epoch checkpoint,
  then keeps receiving decisions;
- fault isolation: malformed wire bytes, mid-frame disconnects and
  read-timeout stalls each cost only the offending client;
- the ``/stats`` endpoint and the in-process event feed;
- eager CLI flag validation (stderr + exit 2, nothing bound).
"""

import asyncio
import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.rl import Hyperparameters
from repro.serve import (
    CapesServer,
    ServeClient,
    ServeClientError,
    ServeConfig,
    build_serve_agent,
)
from repro.serve import protocol

W = 6  # frame width
OBS = 3  # observation window ticks
ACTIONS = 4

HP = Hyperparameters(
    hidden_layer_size=8,
    exploration_ticks=20,
    sampling_ticks_per_observation=OBS,
)


def make_config(**overrides) -> ServeConfig:
    base = dict(
        frame_width=W,
        n_actions=ACTIONS,
        port=0,
        tick_stride=64,
        trainer_backend="none",
        greedy=True,
        seed=23,
        hp=HP,
    )
    base.update(overrides)
    return ServeConfig(**base)


def client_frames(seed: int, n: int) -> np.ndarray:
    """A deterministic, sparsely changing PI-frame walk."""
    rng = np.random.default_rng(seed)
    frames = np.empty((n, W))
    frames[0] = rng.normal(size=W)
    for i in range(1, n):
        frames[i] = frames[i - 1]
        # one or two indicators move per tick, like real PIs
        for idx in rng.integers(0, W, size=rng.integers(1, 3)):
            frames[i, idx] += rng.normal()
    return frames


async def wait_for_disconnect(server: CapesServer, name: str) -> None:
    """Let the server's handler observe a dropped connection."""
    for _ in range(200):
        cluster = server._clusters.get(name)
        if cluster is None or cluster.writer is None:
            return
        await asyncio.sleep(0.01)
    raise AssertionError(f"server never noticed {name!r} disconnecting")


def run(coro):
    return asyncio.run(coro)


# -- golden equivalence ------------------------------------------------------


class InlineReference:
    """The same decision pipeline, run in-process: float32 wire
    rounding, oldest-first window stacking, greedy act."""

    def __init__(self, agent):
        self.agent = agent
        self.windows = {}

    def tick(self, name, frame):
        window = self.windows.setdefault(name, [])
        # The wire carries float32: the server acts on rounded values.
        window.append(frame.astype(np.float32).astype(np.float64))
        if len(window) > OBS:
            window.pop(0)
        if len(window) < OBS:
            return None
        obs = np.concatenate(window)
        return int(self.agent.act(obs, greedy=True))


def test_server_decisions_match_inline_reference():
    config = make_config()
    n_ticks, names = 12, ["alpha", "beta"]
    frames = {name: client_frames(i, n_ticks) for i, name in enumerate(names)}

    async def body():
        server = CapesServer(config)
        await server.start()
        decisions = {name: {} for name in names}
        try:
            clients = {
                name: ServeClient("127.0.0.1", server.port, name, W)
                for name in names
            }
            for client in clients.values():
                await client.connect()
            for t in range(n_ticks):
                # interleave the two clients tick by tick
                for name in names:
                    tick, action, decided = await clients[name].tick(
                        t + 1, frames[name][t], reward=0.5
                    )
                    if decided:
                        decisions[name][tick] = action
            for client in clients.values():
                await client.close()
        finally:
            await server.shutdown()
        return decisions

    got = run(body())
    reference = InlineReference(
        build_serve_agent(config.seed, OBS * W, ACTIONS, hp=HP)
    )
    for name in names:
        expected = {}
        for t in range(n_ticks):
            action = reference.tick(name, frames[name][t])
            if action is not None:
                expected[t + 1] = action
        assert got[name] == expected, f"decision mismatch for {name}"
        # The window warms after OBS ticks, then every tick decides.
        assert len(expected) == n_ticks - OBS + 1


# -- kill and reconnect ------------------------------------------------------


def test_reconnect_gets_resync_and_current_epoch_checkpoint():
    # A live serial trainer so the weight version moves while the
    # client is away: sync_every=2 broadcasts every other SGD step.
    config = make_config(
        trainer_backend="serial", train_ratio=1.0, sync_every=2
    )
    frames = client_frames(7, 20)

    async def body():
        server = CapesServer(config)
        await server.start()
        try:
            client = ServeClient("127.0.0.1", server.port, "gamma", W)
            await client.connect()
            for t in range(8):
                await client.tick(t + 1, frames[t], reward=0.1)
            stale_encoder = client.encoder
            # The kill: vanish without BYE, mid-conversation.
            client.writer.close()
            await wait_for_disconnect(server, "gamma")
            assert server.stats.evictions == 1

            await client.connect()
            # Reconnect handshake must carry the *current* weights.
            assert (client.weight_epoch, client.weight_version) == (
                server._weight_epoch,
                server._weight_version,
            )
            assert client.weight_version >= 1  # training moved while up
            # Simulate the stale-encoder failure mode: the client kept
            # differential state the server no longer has.
            client.encoder = stale_encoder
            tick, action, decided = await client.tick(
                9, frames[8], reward=0.1
            )
            assert client.resyncs == 1  # RESYNC round-trip happened
            assert server.stats.resyncs == 1
            assert decided and tick == 9
            # And the stream continues differentially afterwards.
            tick, action, decided = await client.tick(
                10, frames[9], reward=0.1
            )
            assert decided and tick == 10 and client.resyncs == 1
            await client.close()
        finally:
            await server.shutdown()

    run(body())


# -- fault isolation ---------------------------------------------------------


async def raw_handshake(port, name="rawhide"):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(
        protocol.pack_json(
            protocol.HELLO,
            {"name": name, "frame_width": W, "proto": protocol.PROTO_VERSION},
        )
    )
    await writer.drain()
    await protocol.read_message(reader)  # WELCOME
    await protocol.read_message(reader)  # CHECKPOINT
    return reader, writer


async def healthy_exchange(client, tick, frame):
    got_tick, _, _ = await client.tick(tick, frame, reward=0.0)
    assert got_tick == tick


def test_malformed_wire_message_costs_only_the_sender():
    config = make_config()
    frames = client_frames(11, 10)

    async def body():
        server = CapesServer(config)
        await server.start()
        try:
            healthy = ServeClient("127.0.0.1", server.port, "steady", W)
            await healthy.connect()
            await healthy_exchange(healthy, 1, frames[0])

            reader, writer = await raw_handshake(server.port)
            writer.write(protocol.pack_frame(1, 0.0, b"this is not zlib"))
            await writer.drain()
            msg_type, payload = await protocol.read_message(reader)
            assert msg_type == protocol.ERROR
            assert "malformed" in protocol.unpack_json(payload)["error"]
            await wait_for_disconnect(server, "rawhide")
            assert server.stats.protocol_errors == 1

            # The healthy client's decoder state is untouched: its next
            # (differential) frame still decodes and decides.
            for t in range(2, 6):
                await healthy_exchange(healthy, t, frames[t - 1])
            assert healthy.decisions >= 1
            await healthy.close()
        finally:
            await server.shutdown()

    run(body())


def test_mid_frame_disconnect_survived():
    config = make_config()
    frames = client_frames(12, 8)

    async def body():
        server = CapesServer(config)
        await server.start()
        try:
            healthy = ServeClient("127.0.0.1", server.port, "steady", W)
            await healthy.connect()
            _, writer = await raw_handshake(server.port, "flake")
            # Half a message prefix, then gone.
            writer.write(b"\x03\xff\xff")
            writer.close()
            await wait_for_disconnect(server, "flake")
            assert server.stats.disconnects >= 1
            for t in range(1, 6):
                await healthy_exchange(healthy, t, frames[t - 1])
            await healthy.close()
        finally:
            await server.shutdown()

    run(body())


def test_stalled_client_times_out_without_collateral():
    config = make_config(read_timeout=0.25)
    frames = client_frames(13, 30)

    async def body():
        server = CapesServer(config)
        await server.start()
        try:
            healthy = ServeClient("127.0.0.1", server.port, "steady", W)
            await healthy.connect()
            staller = ServeClient("127.0.0.1", server.port, "stall", W)
            await staller.connect()
            # The stall: connected, silent. Keep the healthy client
            # chatting through the window to prove no collateral.
            deadline = asyncio.get_running_loop().time() + 0.6
            t = 0
            while asyncio.get_running_loop().time() < deadline:
                t += 1
                await healthy_exchange(healthy, t, frames[min(t, 29)])
                await asyncio.sleep(0.02)
            await wait_for_disconnect(server, "stall")
            assert server.stats.timeouts == 1
            await healthy_exchange(healthy, t + 1, frames[min(t + 1, 29)])
            await healthy.close()
        finally:
            await server.shutdown()

    run(body())


def test_non_monotonic_tick_rejected():
    config = make_config()
    frames = client_frames(14, 4)

    async def body():
        server = CapesServer(config)
        await server.start()
        try:
            client = ServeClient("127.0.0.1", server.port, "rewind", W)
            await client.connect()
            await client.tick(5, frames[0])
            with pytest.raises(ServeClientError, match="non-monotonic"):
                await client.tick(3, frames[1])
        finally:
            await server.shutdown()

    run(body())


def test_server_full_and_duplicate_name_rejected():
    config = make_config(max_clients=1)

    async def body():
        server = CapesServer(config)
        await server.start()
        try:
            first = ServeClient("127.0.0.1", server.port, "only", W)
            await first.connect()
            dupe = ServeClient("127.0.0.1", server.port, "only", W)
            with pytest.raises(ServeClientError, match="already connected"):
                await dupe.connect()
            extra = ServeClient("127.0.0.1", server.port, "more", W)
            with pytest.raises(ServeClientError, match="server full"):
                await extra.connect()
            await first.close()
        finally:
            await server.shutdown()

    run(body())


# -- observability -----------------------------------------------------------


def test_stats_endpoint_serves_live_counters():
    config = make_config(stats_port=0, trainer_backend="serial")
    frames = client_frames(15, 8)

    async def body():
        server = CapesServer(config)
        await server.start()
        try:
            client = ServeClient("127.0.0.1", server.port, "watched", W)
            await client.connect()
            for t in range(6):
                await client.tick(t + 1, frames[t], reward=0.3)
            url = f"http://127.0.0.1:{server.stats_port}/stats"
            body_bytes = await asyncio.to_thread(
                lambda: urllib.request.urlopen(url, timeout=5).read()
            )
            snap = json.loads(body_bytes)
            assert snap["frames_total"] == 6
            assert snap["decisions_total"] == 6 - OBS + 1
            row = snap["clusters"]["watched"]
            assert row["connected"] and row["last_tick"] == 6
            assert row["wire"]["messages"] == 6
            assert row["wire"]["compressed_bytes"] > 0
            assert snap["trainer"]["backend"] == "serial"
            assert snap["weight_epoch"] == server._weight_epoch
            # and unknown paths 404 without killing the endpoint
            with pytest.raises(urllib.error.HTTPError):
                await asyncio.to_thread(
                    lambda: urllib.request.urlopen(
                        f"http://127.0.0.1:{server.stats_port}/nope",
                        timeout=5,
                    )
                )
            await client.close()
        finally:
            await server.shutdown()

    run(body())


def test_event_feed_publishes_lifecycle():
    config = make_config()
    frames = client_frames(16, 6)

    async def body():
        server = CapesServer(config)
        await server.start()
        queue = server.events.subscribe()
        try:
            client = ServeClient("127.0.0.1", server.port, "feedme", W)
            await client.connect()
            for t in range(4):
                await client.tick(t + 1, frames[t])
            await client.close()
            await wait_for_disconnect(server, "feedme")
        finally:
            await server.shutdown()
        events = []
        while not queue.empty():
            events.append(queue.get_nowait())
        return events

    events = run(body())
    kinds = [e["event"] for e in events]
    assert kinds[0] == "connect"
    assert "decision" in kinds
    assert "disconnect" in kinds
    assert kinds[-1] == "shutdown"
    decision = next(e for e in events if e["event"] == "decision")
    assert decision["cluster"] == "feedme"
    assert decision["latency_ms"] >= 0


# -- config validation -------------------------------------------------------


class TestServeConfigValidation:
    def test_bad_ports(self):
        with pytest.raises(ValueError, match="port"):
            make_config(port=65536)
        with pytest.raises(ValueError, match="stats_port"):
            make_config(stats_port=-1)

    def test_stride_must_exceed_window(self):
        with pytest.raises(ValueError, match="tick_stride"):
            make_config(tick_stride=OBS)

    def test_unknown_backend(self):
        with pytest.raises(ValueError, match="backend"):
            make_config(trainer_backend="inline")

    def test_trainer_knob_rules_reused(self):
        with pytest.raises(ValueError, match="train_ratio"):
            make_config(trainer_backend="serial", train_ratio=-0.5)
        with pytest.raises(ValueError, match="sync_every"):
            make_config(trainer_backend="process", sync_every=0)

    def test_timeout_and_clients(self):
        with pytest.raises(ValueError, match="read_timeout"):
            make_config(read_timeout=0)
        with pytest.raises(ValueError, match="max_clients"):
            make_config(max_clients=0)


MINIMAL_CONF = """
from repro.workloads import RandomReadWrite

N_SERVERS = 1
N_CLIENTS = 1
HIDDEN_LAYER_SIZE = 8
SAMPLING_TICKS_PER_OBSERVATION = 3
EXPLORATION_TICKS = 20
SEED = 7

def WORKLOAD(cluster, seed):
    return RandomReadWrite(
        cluster, read_fraction=0.1, instances_per_client=2, seed=seed)
"""


class TestServeCLIValidation:
    """``repro serve`` rejects bad flags before binding anything."""

    @pytest.fixture
    def conf_path(self, tmp_path):
        p = tmp_path / "conf.py"
        p.write_text(MINIMAL_CONF)
        return str(p)

    def run_cli(self, *argv):
        from repro.cli import main

        return main(["serve", *argv])

    def test_port_out_of_range(self, capsys):
        # validated before the conf is even loaded
        assert self.run_cli("--config", "/nonexistent", "--port", "99999") == 2
        assert "--port" in capsys.readouterr().err

    def test_stats_port_out_of_range(self, capsys):
        assert (
            self.run_cli(
                "--config", "/nonexistent", "--stats-port", "-2"
            )
            == 2
        )
        assert "--stats-port" in capsys.readouterr().err

    def test_max_clients(self, capsys):
        assert (
            self.run_cli("--config", "/nonexistent", "--max-clients", "0")
            == 2
        )
        assert "--max-clients" in capsys.readouterr().err

    def test_read_timeout(self, capsys):
        assert (
            self.run_cli("--config", "/nonexistent", "--read-timeout", "0")
            == 2
        )
        assert "--read-timeout" in capsys.readouterr().err

    def test_refuses_existing_out(self, tmp_path, capsys):
        existing = tmp_path / "replay.sqlite"
        existing.write_text("precious")
        assert (
            self.run_cli(
                "--config", "/nonexistent", "--out", str(existing)
            )
            == 2
        )
        assert "refusing to overwrite" in capsys.readouterr().err
        assert existing.read_text() == "precious"

    def test_trainer_knobs_need_backend(self, conf_path, capsys):
        assert (
            self.run_cli(
                "--config", conf_path,
                "--trainer-backend", "none",
                "--train-ratio", "2",
            )
            == 2
        )
        assert "--train-ratio" in capsys.readouterr().err

    def test_negative_train_ratio(self, conf_path, capsys):
        assert (
            self.run_cli("--config", conf_path, "--train-ratio", "-1")
            == 2
        )
        assert "train_ratio" in capsys.readouterr().err

    def test_stride_smaller_than_window(self, conf_path, capsys):
        assert (
            self.run_cli("--config", conf_path, "--tick-stride", "2")
            == 2
        )
        assert "tick_stride" in capsys.readouterr().err

    def test_snapshot_every_needs_dir(self, conf_path, capsys):
        assert (
            self.run_cli("--config", conf_path, "--snapshot-every-s", "5")
            == 2
        )
        assert "--snapshot-dir" in capsys.readouterr().err

    def test_resume_without_path_needs_dir(self, conf_path, capsys):
        assert self.run_cli("--config", conf_path, "--resume") == 2
        assert "--snapshot-dir" in capsys.readouterr().err

    def test_resume_missing_snapshot(self, conf_path, tmp_path, capsys):
        assert (
            self.run_cli(
                "--config", conf_path,
                "--snapshot-dir", str(tmp_path),
                "--resume",
            )
            == 2
        )
        assert "no such snapshot" in capsys.readouterr().err


# -- crash recovery ----------------------------------------------------------


def test_shutdown_writes_snapshot_and_resume_restores_state(tmp_path):
    """The serve tentpole golden: kill the daemon, resume a fresh one.

    The dying daemon's final artifact carries the agent (byte-identical
    weights + optimizer), the replay rows, the weight fence and the
    cluster registry; the resumed daemon serves the same cluster from
    ``last_tick + 1`` with cumulative accounting.
    """
    from repro.serve import SERVE_SNAPSHOT_NAME
    from repro.snapshot import SessionSnapshot

    config = make_config(
        trainer_backend="serial",
        train_ratio=1.0,
        sync_every=2,
        greedy=False,
        snapshot_dir=str(tmp_path),
        snapshot_every_s=300.0,
    )
    frames = client_frames(31, 20)
    artifact = tmp_path / SERVE_SNAPSHOT_NAME

    async def first_life():
        server = CapesServer(config)
        await server.start()
        try:
            client = ServeClient("127.0.0.1", server.port, "alpha", W)
            await client.connect()
            for t in range(12):
                await client.tick(t + 1, frames[t], reward=0.5)
            await client.close()
        finally:
            await server.shutdown()
        return server

    server1 = run(first_life())
    assert artifact.exists(), "shutdown did not write the final snapshot"
    snap = SessionSnapshot.load(artifact)
    serve_meta = snap.section("serve")
    assert serve_meta["counters"]["frames_total"] == 12
    assert serve_meta["weight_version"] >= 1  # training moved in life 1
    assert [c["name"] for c in serve_meta["clusters"]] == ["alpha"]

    server2 = CapesServer(make_config(**{**config.__dict__}))
    server2.restore_state(snap)
    # The replay store and the acting weights survive byte-identically.
    assert len(server2.db) == 12
    assert server2.agent.snapshot_weights(
        include_optimizer=True
    ) == server1.agent.snapshot_weights(include_optimizer=True)
    assert server2.stats_snapshot()["weight_epoch"] == serve_meta[
        "weight_epoch"
    ]

    async def second_life():
        await server2.start()
        try:
            client = ServeClient("127.0.0.1", server2.port, "alpha", W)
            await client.connect()
            # The monotonic fence carried over: replaying an old tick is
            # a protocol error, exactly as on a live reconnect.
            with pytest.raises(ServeClientError):
                await client.tick(1, frames[0], reward=0.5)
            await client.close()

            client = ServeClient("127.0.0.1", server2.port, "alpha", W)
            await client.connect()
            decided = 0
            for t in range(12, 18):
                _, _, ok = await client.tick(t + 1, frames[t], reward=0.5)
                decided += bool(ok)
            # The restored ring was warm, so every new tick decides.
            assert decided == 6
            await client.close()
        finally:
            await server2.shutdown()

    run(second_life())
    row = server2.stats.clusters["alpha"]
    assert row.frames == 18, "per-cluster accounting must be cumulative"
    assert row.connects >= 2
    assert server2.stats.frames_total == 18
    # Training resumed on top of the restored cadence.
    assert (
        server2.stats.trainer["steps_attempted"]
        > snap.section("trainer")["steps_attempted"]
    )


def test_periodic_snapshot_task_rewrites_artifact(tmp_path):
    """The snapshot loop writes while the daemon is up, not only at exit."""
    from repro.serve import SERVE_SNAPSHOT_NAME

    config = make_config(
        snapshot_dir=str(tmp_path), snapshot_every_s=0.05
    )
    artifact = tmp_path / SERVE_SNAPSHOT_NAME

    async def body():
        server = CapesServer(config)
        await server.start()
        try:
            client = ServeClient("127.0.0.1", server.port, "alpha", W)
            await client.connect()
            frames = client_frames(5, 4)
            for t in range(4):
                await client.tick(t + 1, frames[t], reward=0.0)
            for _ in range(100):
                if artifact.exists():
                    break
                await asyncio.sleep(0.02)
            assert artifact.exists(), "periodic snapshot never appeared"
            await client.close()
        finally:
            await server.shutdown()

    run(body())


def test_restore_state_rejects_mismatched_geometry():
    from repro.snapshot import SnapshotError

    snap = CapesServer(make_config()).snapshot_state()
    other = CapesServer(make_config(tick_stride=128))
    with pytest.raises(SnapshotError, match="tick_stride"):
        other.restore_state(snap)
    frozen = CapesServer(
        make_config(trainer_backend="serial", train_ratio=1.0)
    )
    with pytest.raises(SnapshotError, match="backend"):
        frozen.restore_state(snap)
    started = CapesServer(make_config())

    async def started_rejects():
        await started.start()
        try:
            with pytest.raises(SnapshotError, match="before start"):
                started.restore_state(snap)
        finally:
            await started.shutdown()

    run(started_rejects())


def test_process_backend_requires_matching_obs_window():
    """The forked worker samples the hp window; a daemon serving a
    different obs_ticks would feed the agent unshaped batches."""
    with pytest.raises(ValueError, match="sampling_ticks_per_observation"):
        make_config(
            trainer_backend="process",
            obs_ticks=OBS + 1,
            train_ratio=1.0,
        )


# -- broadcast backpressure and trainer-stats accounting ---------------------


def test_broadcast_skipped_for_stalled_reader():
    """A reader that stops draining its socket must not accumulate
    checkpoint blobs in its transport buffer: the broadcast is skipped
    and counted, and healthy clients still receive the weights."""
    config = make_config(
        trainer_backend="serial",
        train_ratio=1.0,
        sync_every=2,
        greedy=False,
        broadcast_high_water=64 * 1024,
    )
    frames = client_frames(13, 20)

    async def body():
        server = CapesServer(config)
        await server.start()
        try:
            stalled_reader, stalled_writer = await raw_handshake(
                server.port, "stalled"
            )
            # Simulate the stall: the peer never reads, and the server
            # has megabytes queued for it already.
            server._clusters["stalled"].writer.write(
                b"\0" * (16 * 1024 * 1024)
            )
            healthy = ServeClient("127.0.0.1", server.port, "healthy", W)
            await healthy.connect()
            for t in range(12):
                await healthy.tick(t + 1, frames[t], reward=0.5)
            assert server.stats.broadcasts_skipped >= 1
            assert server.stats.checkpoints_broadcast >= 1
            assert healthy.checkpoints_applied >= 2  # handshake + bump
            await healthy.close()
            stalled_writer.close()
        finally:
            await server.shutdown()

    run(body())


def test_serial_trainer_stats_reach_stats_snapshot():
    """Regression: the serial backend's broadcasts used to leave
    ``weights_version``/``broadcasts_applied`` at zero in ``/stats``
    because only the process worker fed them back."""
    config = make_config(
        trainer_backend="serial",
        train_ratio=1.0,
        sync_every=2,
        greedy=False,
    )
    frames = client_frames(17, 16)

    async def body():
        server = CapesServer(config)
        await server.start()
        try:
            client = ServeClient("127.0.0.1", server.port, "alpha", W)
            await client.connect()
            for t in range(12):
                await client.tick(t + 1, frames[t], reward=0.5)
            body = server.stats_snapshot()
            trainer = body["trainer"]
            assert trainer is not None
            assert trainer["weights_version"] >= 1
            assert trainer["broadcasts_applied"] == trainer["weights_version"]
            assert body["checkpoints_broadcast"] == trainer["weights_version"]
            assert body["weight_version"] == trainer["weights_version"]
            await client.close()
        finally:
            await server.shutdown()

    run(body())
