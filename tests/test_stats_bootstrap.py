"""Tests for bootstrap confidence intervals."""

import numpy as np
import pytest

from repro.stats import bootstrap_ci, bootstrap_ratio_ci


class TestBootstrapCI:
    def test_mean_ci_contains_estimate(self):
        x = np.random.default_rng(0).normal(10.0, 2.0, size=200)
        ci = bootstrap_ci(x, seed=0)
        assert ci.low <= ci.estimate <= ci.high
        assert ci.estimate == pytest.approx(x.mean())

    def test_interval_shrinks_with_n(self):
        rng = np.random.default_rng(1)
        small = bootstrap_ci(rng.normal(size=20), seed=0)
        large = bootstrap_ci(rng.normal(size=2000), seed=0)
        assert (large.high - large.low) < (small.high - small.low)

    def test_custom_statistic(self):
        x = np.random.default_rng(2).exponential(size=500)
        ci = bootstrap_ci(x, statistic=np.median, seed=0)
        assert ci.low <= np.median(x) <= ci.high

    def test_deterministic_with_seed(self):
        x = np.random.default_rng(3).normal(size=50)
        a = bootstrap_ci(x, seed=9)
        b = bootstrap_ci(x, seed=9)
        assert (a.low, a.high) == (b.low, b.high)

    def test_too_few_samples(self):
        with pytest.raises(ValueError):
            bootstrap_ci(np.array([1.0]))

    def test_bad_confidence(self):
        with pytest.raises(ValueError):
            bootstrap_ci(np.ones(10) + np.arange(10), confidence=1.0)


class TestBootstrapRatioCI:
    def test_known_gain_recovered(self):
        rng = np.random.default_rng(4)
        base = rng.normal(10.0, 1.0, size=400)
        tuned = rng.normal(14.5, 1.0, size=400)
        ci = bootstrap_ratio_ci(base, tuned, seed=0)
        assert ci.estimate == pytest.approx(0.45, abs=0.05)
        assert ci.low <= ci.estimate <= ci.high
        assert ci.low > 0.3  # clearly positive gain

    def test_no_gain_interval_straddles_zero(self):
        rng = np.random.default_rng(5)
        base = rng.normal(10.0, 2.0, size=100)
        # A permutation of the same sample: gain is exactly zero by
        # construction (two independent draws can differ by chance).
        tuned = rng.permutation(base)
        ci = bootstrap_ratio_ci(base, tuned, seed=0)
        assert ci.estimate == pytest.approx(0.0, abs=1e-12)
        assert ci.low < 0.0 < ci.high

    def test_zero_baseline_rejected(self):
        with pytest.raises(ZeroDivisionError):
            bootstrap_ratio_ci(np.zeros(10), np.ones(10))

    def test_too_few_samples(self):
        with pytest.raises(ValueError):
            bootstrap_ratio_ci(np.array([1.0]), np.ones(10))

    def test_str_formatting(self):
        rng = np.random.default_rng(6)
        ci = bootstrap_ratio_ci(
            rng.normal(10, 1, 50), rng.normal(12, 1, 50), seed=0
        )
        assert "bootstrap CI" in str(ci)
