"""Tests for the discrete-event engine core (repro.sim.engine)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim import Event, Simulator, SimulationError, Timeout


class TestEvent:
    def test_initially_pending(self):
        sim = Simulator()
        ev = sim.event()
        assert not ev.triggered
        with pytest.raises(SimulationError):
            _ = ev.value
        with pytest.raises(SimulationError):
            _ = ev.ok

    def test_succeed_carries_value(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed(123)
        sim.run()
        assert ev.ok and ev.value == 123 and ev.processed

    def test_fail_requires_exception(self):
        sim = Simulator()
        ev = sim.event()
        with pytest.raises(TypeError):
            ev.fail("not an exception")

    def test_double_trigger_rejected(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed()
        with pytest.raises(SimulationError):
            ev.succeed()
        with pytest.raises(SimulationError):
            ev.fail(RuntimeError("x"))

    def test_callback_after_processing_runs_immediately(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed("v")
        sim.run()
        seen = []
        ev.add_callback(lambda e: seen.append(e.value))
        assert seen == ["v"]


class TestSimulatorClock:
    def test_time_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_timeout_advances_clock(self):
        sim = Simulator()
        sim.timeout(2.5)
        sim.run()
        assert sim.now == 2.5

    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []
        for delay in (3.0, 1.0, 2.0):
            sim.timeout(delay, value=delay).add_callback(
                lambda e: order.append(e.value)
            )
        sim.run()
        assert order == [1.0, 2.0, 3.0]

    def test_ties_break_in_creation_order(self):
        sim = Simulator()
        order = []
        for tag in "abc":
            t = sim.timeout(1.0, value=tag)
            t.add_callback(lambda e: order.append(e.value))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_run_until_advances_exactly_to_bound(self):
        sim = Simulator()
        sim.timeout(10.0)
        sim.run(until=4.0)
        assert sim.now == 4.0
        sim.run(until=10.0)
        assert sim.now == 10.0

    def test_run_until_past_raises(self):
        sim = Simulator()
        sim.timeout(5.0)
        sim.run(until=5.0)
        with pytest.raises(SimulationError):
            sim.run(until=1.0)

    def test_negative_timeout_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.timeout(-1.0)

    def test_step_on_empty_queue_raises(self):
        with pytest.raises(SimulationError):
            Simulator().step()

    def test_peek(self):
        sim = Simulator()
        assert sim.peek() == float("inf")
        sim.timeout(3.0)
        assert sim.peek() == 3.0

    def test_call_at(self):
        sim = Simulator()
        hits = []
        sim.call_at(2.0, lambda: hits.append(sim.now))
        sim.run()
        assert hits == [2.0]

    def test_call_at_past_raises(self):
        sim = Simulator()
        sim.timeout(2.0)
        sim.run()
        with pytest.raises(SimulationError):
            sim.call_at(1.0, lambda: None)

    def test_events_processed_counter(self):
        sim = Simulator()
        for _ in range(5):
            sim.timeout(1.0)
        sim.run()
        assert sim.events_processed == 5


@given(delays=st.lists(st.floats(min_value=0, max_value=100), min_size=1, max_size=40))
def test_clock_is_monotone_under_arbitrary_timeouts(delays):
    """Property: processing order never moves the clock backwards."""
    sim = Simulator()
    observed = []
    for d in delays:
        sim.timeout(d).add_callback(lambda e: observed.append(sim.now))
    sim.run()
    assert observed == sorted(observed)
    assert len(observed) == len(delays)


@given(
    delays=st.lists(
        st.floats(min_value=0, max_value=50), min_size=1, max_size=30
    ),
    bound=st.floats(min_value=0, max_value=60),
)
def test_run_until_processes_exactly_events_within_bound(delays, bound):
    sim = Simulator()
    fired = []
    for d in delays:
        sim.timeout(d, value=d).add_callback(lambda e: fired.append(e.value))
    sim.run(until=bound)
    assert sorted(fired) == sorted(d for d in delays if d <= bound)
    assert sim.now == bound
