"""Tests for vectorized multi-cluster collection (repro.env.vector).

The determinism contract: per-env trajectories from ``VectorEnv(n)``
are byte-identical to n serial single-environment runs built with the
same :func:`vector_seeds`-derived seeds, and the ``serial`` and
``fork`` backends are byte-identical to each other.  Fan-in lands every
cluster's replay records in one shared DB, block-strided so Algorithm 1
windows never cross clusters.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.cluster import ClusterConfig
from repro.env import (
    EnvConfig,
    StorageTuningEnv,
    VectorEnv,
    WorkerCrashError,
    vector_seeds,
)
from repro.exp import ExperimentSpec, RunBudget, WorkloadSpec, execute_spec
from repro.replaydb.sampler import SamplerStarvedError
from repro.rl import Hyperparameters
from repro.workloads import RandomReadWrite

TINY_HP = Hyperparameters(
    hidden_layer_size=8,
    exploration_ticks=20,
    sampling_ticks_per_observation=3,
)


def tiny_workload(cluster, seed):
    return RandomReadWrite(
        cluster, read_fraction=0.1, seed=seed, instances_per_client=2
    )


def tiny_config(seed: int = 0) -> EnvConfig:
    return EnvConfig(
        cluster=ClusterConfig(n_servers=2, n_clients=2),
        workload_factory=tiny_workload,
        hp=TINY_HP,
        seed=seed,
    )


def scripted_actions(venv_or_env, t: int) -> int:
    return t % venv_or_env.n_actions


class TestDeterminism:
    N_TICKS = 6

    def _vector_trajectory(self, n: int, backend: str):
        venv = VectorEnv.from_config(
            tiny_config(seed=9), n, backend=backend, tick_stride=256
        )
        try:
            first = venv.reset().copy()
            traj = []
            for t in range(self.N_TICKS):
                obs, rewards, _infos = venv.step(
                    [scripted_actions(venv, t)] * n
                )
                traj.append((obs.copy(), rewards.copy()))
            return first, traj
        finally:
            venv.close()

    def test_vector_matches_serial_single_env_runs(self):
        """The acceptance contract, n=4: byte-identical per-env runs."""
        n = 4
        first, traj = self._vector_trajectory(n, "serial")
        for i, seed in enumerate(vector_seeds(9, n)):
            env = StorageTuningEnv(replace(tiny_config(seed=9), seed=seed))
            try:
                assert np.array_equal(env.reset(), first[i])
                for t in range(self.N_TICKS):
                    obs, reward, _info = env.step(scripted_actions(env, t))
                    assert np.array_equal(obs, traj[t][0][i])
                    assert reward == traj[t][1][i]
            finally:
                env.close()

    def test_serial_and_fork_backends_bit_identical(self):
        first_s, traj_s = self._vector_trajectory(2, "serial")
        first_f, traj_f = self._vector_trajectory(2, "fork")
        assert np.array_equal(first_s, first_f)
        for (obs_s, r_s), (obs_f, r_f) in zip(traj_s, traj_f):
            assert np.array_equal(obs_s, obs_f)
            assert np.array_equal(r_s, r_f)

    def test_obs_buffer_is_reused_across_ticks(self):
        venv = VectorEnv.from_config(tiny_config(), 2, tick_stride=256)
        try:
            first = venv.reset()
            again, _r, _i = venv.step([0, 0])
            assert again is first  # one preallocated (n, obs_dim) buffer
        finally:
            venv.close()


class TestFanIn:
    def test_shared_db_fan_in_counts(self):
        n, ticks = 3, 5
        venv = VectorEnv.from_config(tiny_config(), n, tick_stride=64)
        try:
            venv.reset()
            venv.collect(ticks)
            warm = TINY_HP.sampling_ticks_per_observation
            expected = n * (warm + ticks)
            assert len(venv.shared_db) == expected
            assert venv.shared_db.record_count() == expected
            # Each env's block holds its own local ticks.
            cache = venv.shared_db.cache
            for i in range(n):
                block = [
                    t
                    for t in range(i * 64, (i + 1) * 64)
                    if cache.has(t)
                ]
                assert len(block) == warm + ticks
        finally:
            venv.close()

    def test_actions_arrive_in_shared_db(self):
        venv = VectorEnv.from_config(tiny_config(), 2, tick_stride=64)
        try:
            venv.reset()
            venv.step([1, 2])
            # An action is recorded at the tick it was decided on; the
            # refresh sync during the next step picks it up.
            venv.step([3, 4])
            cache = venv.shared_db.cache
            warm = TINY_HP.sampling_ticks_per_observation
            assert cache.get(warm).action == 1
            assert cache.get(64 + warm).action == 2
            assert cache.get(warm + 1).action == 3
            assert cache.get(64 + warm + 1).action == 4
        finally:
            venv.close()

    def test_strided_sampler_draws_from_every_block(self):
        venv = VectorEnv.from_config(tiny_config(), 2, tick_stride=64)
        try:
            venv.reset()
            venv.collect(8)
            sampler = venv.make_sampler(seed=0)
            batch = sampler.sample_minibatch(64)
            assert batch.s_t.shape == (64, venv.obs_dim)
            spans = sampler.spans.candidate_spans(sampler.obs_ticks)
            assert len(spans) == 2
            assert spans[0][1] < 64 <= spans[1][0]  # one span per block
        finally:
            venv.close()

    def test_sampler_starves_before_collection(self):
        venv = VectorEnv.from_config(tiny_config(), 2, tick_stride=64)
        try:
            venv.reset()
            sampler = venv.make_sampler(seed=0)
            with pytest.raises(SamplerStarvedError):
                sampler.sample_minibatch(4)
        finally:
            venv.close()

    def test_tick_stride_overflow_raises(self):
        venv = VectorEnv.from_config(tiny_config(), 2, tick_stride=6)
        try:
            venv.reset()  # warm-up = 3 ticks
            with pytest.raises(RuntimeError, match="tick_stride"):
                venv.collect(8)
        finally:
            venv.close()

    def test_fan_in_disabled(self):
        venv = VectorEnv.from_config(
            tiny_config(), 2, shared_db_path=None, tick_stride=64
        )
        try:
            venv.reset()
            venv.collect(2)
            assert venv.shared_db is None
            with pytest.raises(RuntimeError, match="no shared replay DB"):
                venv.make_sampler()
        finally:
            venv.close()


class TestChunkedCollect:
    """Chunked stepping is transport, not semantics: one big chunk must
    be byte-identical to per-tick round-trips on both backends."""

    def _collect_state(self, backend: str, chunk):
        venv = VectorEnv.from_config(
            tiny_config(seed=5), 2, backend=backend, tick_stride=64
        )
        try:
            venv.reset()
            rewards = venv.collect(8, chunk=chunk)
            cache = venv.shared_db.cache
            packed = cache.records_between(0, cache.max_tick)
            obs = venv.current_observation().copy()
            return rewards, packed, obs, list(venv._synced)
        finally:
            venv.close()

    @pytest.mark.parametrize("backend", ["serial", "fork"])
    def test_chunked_equals_per_tick(self, backend):
        r1, p1, o1, s1 = self._collect_state(backend, chunk=1)
        r8, p8, o8, s8 = self._collect_state(backend, chunk=None)
        np.testing.assert_array_equal(r1, r8)
        np.testing.assert_array_equal(o1, o8)
        assert s1 == s8
        np.testing.assert_array_equal(p1.ticks, p8.ticks)
        np.testing.assert_array_equal(p1.frames, p8.frames)
        np.testing.assert_array_equal(p1.actions, p8.actions)
        np.testing.assert_array_equal(p1.rewards, p8.rewards)

    def test_chunked_serial_equals_fork(self):
        r_s, p_s, o_s, _ = self._collect_state("serial", chunk=3)
        r_f, p_f, o_f, _ = self._collect_state("fork", chunk=3)
        np.testing.assert_array_equal(r_s, r_f)
        np.testing.assert_array_equal(o_s, o_f)
        np.testing.assert_array_equal(p_s.frames, p_f.frames)

    def test_collect_records_null_actions(self):
        venv = VectorEnv.from_config(tiny_config(), 2, tick_stride=64)
        try:
            venv.reset()
            venv.collect(4)
            cache = venv.shared_db.cache
            warm = TINY_HP.sampling_ticks_per_observation
            # Collection ticks carry the NULL action (index 0); the
            # newest tick's action lands one sync later, and warm-up
            # ticks never acted.
            for offset in (0, 64):
                for t in range(warm + 1, warm + 4):
                    assert cache.get(offset + t).action == 0
                assert cache.get(offset + 1).action == -1
        finally:
            venv.close()

    def test_run_ticks_chunked_refreshes_observation(self):
        venv = VectorEnv.from_config(tiny_config(), 2, tick_stride=64)
        try:
            venv.reset()
            rewards = venv.run_ticks(4)
            assert rewards.shape == (2, 4)
            live = venv.env_method(0, "current_observation")
            np.testing.assert_array_equal(venv.current_observation()[0], live)
        finally:
            venv.close()


class TestResetFence:
    def test_reset_clears_stale_episode_records(self):
        """Regression: a reused vector env must not keep the previous
        episode's transitions in the shared DB."""
        warm = TINY_HP.sampling_ticks_per_observation
        venv = VectorEnv.from_config(tiny_config(), 2, tick_stride=64)
        try:
            venv.reset()
            venv.collect(6)
            assert len(venv.shared_db) == 2 * (warm + 6)
            venv.reset()
            cache = venv.shared_db.cache
            # Only the fresh warm-up records remain...
            assert len(venv.shared_db) == 2 * warm
            assert venv.shared_db.record_count() == 2 * warm
            # ...and the old episode's post-warm-up ticks are gone.
            for offset in (0, 64):
                assert not cache.has(offset + warm + 1)
        finally:
            venv.close()

    def test_reset_fence_with_sqlite_backed_shared_db(self, tmp_path):
        warm = TINY_HP.sampling_ticks_per_observation
        venv = VectorEnv.from_config(
            tiny_config(),
            2,
            shared_db_path=str(tmp_path / "shared.db"),
            tick_stride=64,
        )
        try:
            venv.reset()
            venv.collect(3)
            venv.reset()
            assert venv.shared_db.record_count() == 2 * warm
        finally:
            venv.close()


class _CrashEnv:
    """Minimal Environment whose methods raise unpicklable exceptions."""

    obs_dim = 4
    n_actions = 2
    frame_dim = 2
    action_space = None
    hp = None

    def reset(self):
        return np.zeros(4)

    def step(self, action, out=None):
        return np.zeros(4), 0.0, {}

    def current_observation(self, out=None):
        return np.zeros(4)

    def explode(self):
        class Evil(RuntimeError):
            def __init__(self, gen):
                super().__init__("the real cause")
                self.gen = gen  # generators never pickle

        raise Evil(iter(()))

    def close(self):
        pass


class TestWorkerCrash:
    def test_unpicklable_exception_reports_real_cause(self):
        """Regression: an unpicklable worker exception used to kill the
        pipe and surface as a bare EOFError."""
        venv = VectorEnv(
            [_CrashEnv, _CrashEnv], backend="fork", shared_db_path=None
        )
        try:
            with pytest.raises(WorkerCrashError) as excinfo:
                venv.env_method(0, "explode")
            assert "Evil" in str(excinfo.value)
            assert "the real cause" in str(excinfo.value)
            assert "worker traceback" in str(excinfo.value)
            # The pipe survived: the worker still answers.
            assert venv.env_method(1, "current_observation").shape == (4,)
        finally:
            venv.close()

    def test_picklable_exception_still_verbatim(self):
        venv = VectorEnv.from_config(
            tiny_config(), 1, backend="fork", tick_stride=64
        )
        try:
            with pytest.raises(RuntimeError, match="reset"):
                venv.env_method(0, "step", 0)  # stepping before reset
        finally:
            venv.close()


class TestSharedDbModes:
    def test_default_shared_db_is_cache_only(self):
        venv = VectorEnv.from_config(tiny_config(), 2, tick_stride=64)
        try:
            assert venv.shared_db.path is None  # no SQLite layer
            venv.reset()
            venv.collect(4)
            warm = TINY_HP.sampling_ticks_per_observation
            assert len(venv.shared_db) == 2 * (warm + 4)
            assert venv.shared_db.on_disk_bytes() == 0
            # Sampling works off the cache alone.
            batch = venv.make_sampler(seed=0).sample_minibatch(8)
            assert batch.s_t.shape == (8, venv.obs_dim)
        finally:
            venv.close()

    def test_commit_replay_broadcast(self, tmp_path):
        venv = VectorEnv.from_config(
            tiny_config(),
            2,
            backend="fork",
            shared_db_path=str(tmp_path / "shared.db"),
            tick_stride=64,
        )
        try:
            venv.reset()
            venv.collect(2)
            venv.commit_replay()  # must round-trip through every worker
            assert venv.shared_db.record_count() == len(venv.shared_db)
        finally:
            venv.close()


class TestEnvMethod:
    def test_remote_method_and_fan_in(self):
        venv = VectorEnv.from_config(
            tiny_config(), 2, backend="fork", tick_stride=64
        )
        try:
            venv.reset()
            before = len(venv.shared_db)
            rewards = venv.env_method(0, "run_ticks", 4)
            assert rewards.shape == (4,)
            # env 0's extra ticks were fanned in; env 1 unchanged.
            assert len(venv.shared_db) == before + 4
            params = venv.env_method(1, "current_params")
            assert "max_rpcs_in_flight" in params
        finally:
            venv.close()

    def test_bad_index_rejected(self):
        venv = VectorEnv.from_config(tiny_config(), 2, tick_stride=64)
        try:
            with pytest.raises(IndexError):
                venv.env_method(5, "current_params")
            with pytest.raises(IndexError):
                venv.refresh_observation(2)
        finally:
            venv.close()

    @pytest.mark.parametrize("backend", ["serial", "fork"])
    def test_refresh_observation_after_out_of_lockstep(self, backend):
        venv = VectorEnv.from_config(
            tiny_config(), 2, backend=backend, tick_stride=64
        )
        try:
            venv.reset()
            venv.step([0, 0])
            venv.env_method(0, "run_ticks", 4)  # env 0 runs ahead
            live = venv.env_method(0, "current_observation")
            assert not np.array_equal(venv.current_observation()[0], live)
            buf = venv.refresh_observation(0)
            assert buf is venv.current_observation()
            assert np.array_equal(buf[0], live)
        finally:
            venv.close()


class TestVectorSpec:
    def _spec(self, **overrides):
        defaults = dict(
            tuner="capes",
            cluster=ClusterConfig(n_servers=2, n_clients=2),
            workload=WorkloadSpec(
                "random_rw", {"read_fraction": 0.1, "instances_per_client": 2}
            ),
            hp=TINY_HP,
            budget=RunBudget(train_ticks=6, eval_ticks=4, epoch_ticks=3),
            n_envs=2,
        )
        defaults.update(overrides)
        return ExperimentSpec(**defaults)

    def test_vector_capes_spec_end_to_end(self):
        result = execute_spec(self._spec())
        assert result.extra["n_envs"] == 2
        assert result.final.tuned_rewards.shape == (4,)
        assert result.final.final_params

    def test_vector_spec_serial_fork_identical(self):
        a = execute_spec(self._spec(vector_backend="serial"))
        b = execute_spec(self._spec(vector_backend="fork"))
        assert np.array_equal(a.final.tuned_rewards, b.final.tuned_rewards)
        assert np.array_equal(
            a.final.baseline_rewards, b.final.baseline_rewards
        )

    def test_search_tuner_rejects_vector_env(self):
        with pytest.raises(TypeError, match="capes"):
            execute_spec(self._spec(tuner="random"))

    def test_spec_n_envs_validation(self):
        with pytest.raises(ValueError, match="n_envs"):
            self._spec(n_envs=0).build_env()
