"""Golden-trace determinism for the vectorized fleet backend.

The vec engine is a fluid tick model — a *different physics* from the
reference discrete-event cluster — so its traces are not compared
against ``sim-lustre``.  What is pinned instead is the fleet backend's
own reproducibility contract:

- pinned-seed ``"sim-lustre-vec"`` rollouts (plain and under the
  ``degraded`` / ``bursty`` / ``churn`` scenario timelines) are
  **byte-identical across interpreter invocations** — every pytest run
  is a fresh interpreter, so matching the digests below *is* the
  cross-invocation check;
- fleet row ``i`` is byte-identical to a standalone single-env fleet
  built with the same derived seed (the ``vector_seeds`` contract);
- ``VectorEnv(backend="vec")`` is a zero-cost veneer: its trace is
  byte-identical to driving the fleet directly.

If a digest changes, seeded vec experiments stopped being replayable:
treat it as a regression, not a constant to refresh — unless the change
is an intentional, documented semantic change to the fluid model.
"""

import hashlib

import numpy as np
import pytest

from repro.cluster import ClusterConfig
from repro.env import VectorEnv, make_env, vector_seeds
from repro.env.registry import _default_workload
from repro.rl import Hyperparameters

GOLDEN_SEED = 17
N_TICKS = 10
N_ENVS = 2

HP = Hyperparameters(
    hidden_layer_size=8,
    exploration_ticks=20,
    sampling_ticks_per_observation=3,
)
ENV_KW = dict(cluster=ClusterConfig(n_servers=2, n_clients=2), hp=HP)

#: Compressed event timings so every scenario fires (and, where
#: windowed, reverts) inside the N_TICKS horizon (the same timings
#: ``tests/test_scenario_golden.py`` pins for the reference backend).
SCENARIO_KW = {
    "sim-lustre-degraded": dict(start_tick=4),
    "sim-lustre-bursty": dict(first_tick=4, period=5, n_bursts=2, duration=2),
    "sim-lustre-churn": dict(
        first_tick=4, period=5, absence_ticks=2, n_cycles=2
    ),
}

#: blake2b-128 over the reset observation plus every (obs, rewards) of
#: a 10-tick scripted rollout of a 2-env fleet at seed 17 (see
#: ``_fleet_digest``).  ``None`` keys run scenario-free.
GOLDEN_DIGESTS = {
    None: "1d6cf78546ebbfc2e8bcc21f3c0f7307",
    "sim-lustre-degraded": "6c753869cee0e2c857f2d89cffc83241",
    "sim-lustre-bursty": "80d3c5cc88a825c406977fa6ea27b0d7",
    "sim-lustre-churn": "52f0ec710199d6c253c602e8207c4323",
}


def _make_fleet(scenario, n_envs=N_ENVS, seeds=None):
    kw = dict(ENV_KW)
    if scenario is None:
        kw["workload_factory"] = _default_workload
    else:
        kw["scenario"] = scenario
        kw["scenario_kwargs"] = SCENARIO_KW[scenario]
    return make_env(
        "sim-lustre-vec", seed=GOLDEN_SEED, n_envs=n_envs, seeds=seeds, **kw
    )


def _batch_trace(env, n_envs=N_ENVS, n_ticks=N_TICKS):
    """[reset_obs, obs_1, rewards_1, obs_2, rewards_2, ...] copies."""
    trace = [np.array(env.reset(), copy=True)]
    for t in range(n_ticks):
        obs, rewards, _infos = env.step([t % env.n_actions] * n_envs)
        trace.append(np.array(obs, copy=True))
        trace.append(np.array(rewards, copy=True))
    return trace


def _fleet_digest(env, n_envs=N_ENVS) -> str:
    h = hashlib.blake2b(digest_size=16)
    try:
        for block in _batch_trace(env, n_envs=n_envs):
            h.update(np.ascontiguousarray(block, dtype=np.float64).tobytes())
    finally:
        env.close()
    return h.hexdigest()


@pytest.mark.parametrize(
    "scenario", sorted(GOLDEN_DIGESTS, key=str), ids=lambda s: s or "plain"
)
def test_pinned_vec_rollout_digest(scenario):
    digest = _fleet_digest(_make_fleet(scenario))
    assert digest == GOLDEN_DIGESTS[scenario], (
        f"vec rollout trace drifted ({scenario or 'plain'}): seeded fleet "
        f"runs are no longer replayable across invocations"
    )


def test_fleet_row_matches_standalone_run():
    """Row i of an N-env fleet is byte-identical to a lone fleet built
    with the same derived seed — under a scenario timeline too."""
    scenario = "sim-lustre-churn"
    fleet_trace = _batch_trace(_make_fleet(scenario))
    for i, seed in enumerate(vector_seeds(GOLDEN_SEED, N_ENVS)):
        lone = _make_fleet(scenario, n_envs=1, seeds=[seed])
        try:
            lone_trace = _batch_trace(lone, n_envs=1)
        finally:
            lone.close()
        for fleet_block, lone_block in zip(fleet_trace, lone_trace):
            np.testing.assert_array_equal(fleet_block[i], lone_block[0])


def test_vector_env_vec_backend_matches_direct_fleet():
    """VectorEnv(backend="vec") adds fan-in, not physics: its trace is
    byte-identical to stepping the FleetEnv directly."""
    scenario = "sim-lustre-degraded"
    direct = _batch_trace(_make_fleet(scenario))
    venv = VectorEnv.from_registry(
        scenario,
        N_ENVS,
        base_seed=GOLDEN_SEED,
        backend="vec",
        env_kwargs=dict(scenario_kwargs=SCENARIO_KW[scenario], **ENV_KW),
        tick_stride=256,
    )
    try:
        vec_trace = _batch_trace(venv)
    finally:
        venv.close()
    for d, v in zip(direct, vec_trace):
        np.testing.assert_array_equal(d, v)
