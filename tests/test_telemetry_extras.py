"""Tests for server-side PIs, time features, and their env integration."""

import numpy as np
import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.env import EnvConfig, StorageTuningEnv
from repro.rl import Hyperparameters
from repro.sim import Simulator
from repro.telemetry import (
    SERVER_INDICATORS,
    ServerMonitoringAgent,
    TIME_FEATURE_LABELS,
    server_frame,
    server_frame_width,
    time_feature_width,
    time_features,
)
from repro.telemetry.server_monitor import ServerPIState
from repro.telemetry.timefeat import (
    SECONDS_PER_DAY,
    SECONDS_PER_HOUR,
    SECONDS_PER_WEEK,
)
from repro.util.units import KiB
from repro.workloads import RandomReadWrite

FAST_HP = Hyperparameters(
    hidden_layer_size=8, sampling_ticks_per_observation=3, exploration_ticks=20
)


def busy_cluster():
    sim = Simulator()
    cluster = Cluster(sim, ClusterConfig(n_servers=2, n_clients=2))
    wl = RandomReadWrite(
        cluster, read_fraction=0.2, instances_per_client=3, seed=0
    )
    wl.start()
    return sim, cluster


class TestServerIndicators:
    def test_frame_width(self):
        assert server_frame_width() == len(SERVER_INDICATORS) == 8

    def test_frame_finite_and_clipped(self):
        sim, cluster = busy_cluster()
        sim.run(until=5.0)
        state = ServerPIState(cluster.servers[0])
        frame = server_frame(state, 1.0)
        assert frame.shape == (8,)
        assert np.isfinite(frame).all()
        assert (np.abs(frame) <= 8.0).all()

    def test_rates_are_deltas(self):
        sim, cluster = busy_cluster()
        sim.run(until=5.0)
        state = ServerPIState(cluster.servers[0])
        first = server_frame(state, 1.0)
        # no time passes: second sample sees zero rates
        second = server_frame(state, 1.0)
        labels = [i.name for i in SERVER_INDICATORS]
        for rate_pi in ("read_rate", "write_rate", "rpc_rate", "disk_busy"):
            idx = labels.index(rate_pi)
            assert second[idx] == 0.0

    def test_queue_depth_reflects_load(self):
        sim, cluster = busy_cluster()
        sim.run(until=5.0)
        depths = [s.queue_depth for s in cluster.servers]
        assert max(depths) > 0

    def test_agent_samples_and_encodes(self):
        sim, cluster = busy_cluster()
        sim.run(until=3.0)
        agent = ServerMonitoringAgent(sim, cluster.servers[0])
        frame = agent.sample_frame(1)
        assert frame.shape == (8,)
        msg = agent.sample_once(2)
        assert isinstance(msg, bytes) and len(msg) > 0
        assert agent.ticks_sampled == 2


class TestTimeFeatures:
    def test_width_and_labels(self):
        assert time_feature_width() == len(TIME_FEATURE_LABELS) == 12
        assert time_features(0.0).shape == (12,)

    def test_periodicity(self):
        np.testing.assert_allclose(
            time_features(0.0), time_features(SECONDS_PER_WEEK * 30), atol=1e-6
        )

    def test_sin_cos_unit_circle(self):
        f = time_features(12345.0)
        for i in range(0, 12, 3):
            assert f[i + 1] ** 2 + f[i + 2] ** 2 == pytest.approx(1.0)

    def test_fracs_in_unit_interval(self):
        for t in (0.0, 59.0, 3600.0, 86_400.0 * 3 + 7.5):
            f = time_features(t)
            for i in range(0, 12, 3):
                assert 0.0 <= f[i] < 1.0

    def test_midnight_adjacency(self):
        """23:59:59 and 00:00:01 must be close in the cyclic encoding."""
        before = time_features(SECONDS_PER_DAY - 1)
        after = time_features(SECONDS_PER_DAY + 1)
        hour_sin_cos = slice(4, 6)
        assert np.linalg.norm(before[hour_sin_cos] - after[hour_sin_cos]) < 0.01

    def test_epoch_offset_shifts(self):
        np.testing.assert_allclose(
            time_features(0.0, epoch_offset=SECONDS_PER_HOUR),
            time_features(SECONDS_PER_HOUR),
        )

    def test_nonfinite_rejected(self):
        with pytest.raises(ValueError):
            time_features(float("nan"))


class TestEnvIntegration:
    def make_env(self, **extra):
        return StorageTuningEnv(
            EnvConfig(
                cluster=ClusterConfig(n_servers=2, n_clients=2),
                workload_factory=lambda c, s: RandomReadWrite(
                    c, read_fraction=0.1, instances_per_client=2, seed=s
                ),
                hp=FAST_HP,
                seed=0,
                **extra,
            )
        )

    def test_server_pis_extend_frame(self):
        env = self.make_env(include_server_pis=True)
        assert env.frame_dim == 2 * 22 + 2 * 8
        obs = env.reset()
        assert obs.shape == (env.obs_dim,)
        assert np.isfinite(obs).all()

    def test_time_features_extend_frame(self):
        env = self.make_env(include_time_features=True)
        assert env.frame_dim == 2 * 22 + 12
        env.reset()
        o, _r, _i = env.step(0)
        assert np.isfinite(o).all()

    def test_both_extras_compose(self):
        env = self.make_env(
            include_server_pis=True, include_time_features=True
        )
        assert env.frame_dim == 2 * 22 + 2 * 8 + 12
        env.reset()
        for _ in range(3):
            o, _r, _i = env.step(0)
        # time features live in the tail of the newest frame and move
        frames = o.reshape(FAST_HP.sampling_ticks_per_observation, -1)
        t_now = frames[-1][-12:]
        t_prev = frames[-2][-12:]
        assert not np.array_equal(t_now, t_prev)

    def test_training_works_with_extras(self):
        from repro.core import CapesSession

        env = self.make_env(include_server_pis=True, include_time_features=True)
        session = CapesSession(env, seed=0)
        result = session.train(12)
        assert np.isfinite(result.losses).all()
