"""Tests for the search-based tuning baselines."""

import numpy as np
import pytest

from repro.baselines import (
    EvolutionStrategy,
    HillClimb,
    RandomSearch,
    StaticBaseline,
)
from repro.cluster import ClusterConfig
from repro.env import EnvConfig, StorageTuningEnv
from repro.rl import Hyperparameters
from repro.workloads import RandomReadWrite

FAST_HP = Hyperparameters(
    hidden_layer_size=8, sampling_ticks_per_observation=3
)


def make_env(seed=0):
    return StorageTuningEnv(
        EnvConfig(
            cluster=ClusterConfig(n_servers=2, n_clients=2),
            workload_factory=lambda c, s: RandomReadWrite(
                c, read_fraction=0.1, instances_per_client=3, seed=s
            ),
            hp=FAST_HP,
            seed=seed,
        )
    )


class TestStaticBaseline:
    def test_measures_defaults(self):
        tuner = StaticBaseline(make_env(), epoch_ticks=10)
        result = tuner.tune(budget=2)
        assert result.n_evaluations == 2
        assert result.best_params == {
            "max_rpcs_in_flight": 8.0,
            "io_rate_limit": 10_000.0,
        }
        assert result.best_score > 0


class TestRandomSearch:
    def test_respects_budget_and_ranges(self):
        tuner = RandomSearch(make_env(), epoch_ticks=5, seed=0)
        result = tuner.tune(budget=6)
        assert result.n_evaluations == 6
        for params, _score in result.evaluations:
            assert 1 <= params["max_rpcs_in_flight"] <= 64
            assert 50 <= params["io_rate_limit"] <= 10_000

    def test_best_is_max_of_trace(self):
        tuner = RandomSearch(make_env(), epoch_ticks=5, seed=1)
        result = tuner.tune(budget=5)
        assert result.best_score == max(s for _p, s in result.evaluations)

    def test_values_snap_to_step_grid(self):
        tuner = RandomSearch(make_env(), epoch_ticks=3, seed=2)
        result = tuner.tune(budget=4)
        # Skip the first evaluation: it measures the raw defaults, which
        # need not lie on the search grid.
        for params, _ in result.evaluations[1:]:
            w = params["max_rpcs_in_flight"]
            assert w == round(w)
            r = params["io_rate_limit"]
            assert (r - 50.0) % 250.0 == pytest.approx(0.0, abs=1e-9)


class TestHillClimb:
    def test_runs_within_budget(self):
        tuner = HillClimb(make_env(), epoch_ticks=5, seed=0)
        result = tuner.tune(budget=8)
        assert 1 <= result.n_evaluations <= 8

    @pytest.mark.slow
    def test_finds_improvement_on_write_heavy(self):
        """Default window 8 is in the collapse zone; climbing down helps."""
        tuner = HillClimb(make_env(seed=3), epoch_ticks=20, seed=0)
        result = tuner.tune(budget=10)
        default_score = result.evaluations[0][1]
        assert result.best_score >= default_score

    def test_multiplier_validation(self):
        with pytest.raises(ValueError):
            HillClimb(make_env(), initial_multiplier=0)


class TestEvolutionStrategy:
    def test_runs_within_budget(self):
        tuner = EvolutionStrategy(
            make_env(), epoch_ticks=5, seed=0, mu=2, lam=3
        )
        result = tuner.tune(budget=9)
        assert result.n_evaluations <= 9

    def test_children_stay_in_ranges(self):
        tuner = EvolutionStrategy(make_env(), epoch_ticks=3, seed=1, mu=2, lam=4)
        result = tuner.tune(budget=10)
        for params, _ in result.evaluations:
            assert 1 <= params["max_rpcs_in_flight"] <= 64
            assert 50 <= params["io_rate_limit"] <= 10_000

    def test_hyperparameter_validation(self):
        with pytest.raises(ValueError):
            EvolutionStrategy(make_env(), mu=0)
        with pytest.raises(ValueError):
            EvolutionStrategy(make_env(), sigma_fraction=0.0)


class TestSharedMachinery:
    def test_result_before_tune_rejected(self):
        tuner = StaticBaseline(make_env())
        with pytest.raises(RuntimeError):
            tuner._result()

    def test_epoch_ticks_validation(self):
        with pytest.raises(ValueError):
            StaticBaseline(make_env(), epoch_ticks=0)

    def test_measure_applies_params(self):
        env = make_env()
        tuner = StaticBaseline(env, epoch_ticks=3)
        tuner.measure({"max_rpcs_in_flight": 5, "io_rate_limit": 1000.0})
        assert env.current_params()["max_rpcs_in_flight"] == 5.0
