"""Cross-module invariants and end-to-end integration properties.

These tests bind the DESIGN.md §5 invariants that span multiple
subsystems: byte conservation through the cluster, simulator
determinism, window enforcement under live tuning, replay consistency
between SQLite and the cache, and ε-bump wiring through a workload
schedule.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster, ClusterConfig, RequestTracer
from repro.core import CapesSession
from repro.env import EnvConfig, StorageTuningEnv
from repro.rl import Hyperparameters
from repro.sim import Simulator, Timeout
from repro.util.units import KiB, MiB
from repro.workloads import (
    RandomReadWrite,
    SequentialWrite,
    WorkloadPhase,
    WorkloadSchedule,
)

FAST_HP = Hyperparameters(
    hidden_layer_size=8, sampling_ticks_per_observation=3, exploration_ticks=20
)


def build(n_servers=2, n_clients=2, **cfg):
    sim = Simulator()
    cluster = Cluster(
        sim, ClusterConfig(n_servers=n_servers, n_clients=n_clients, **cfg)
    )
    return sim, cluster


class TestByteConservation:
    def test_client_and_server_write_counters_agree(self):
        """Every byte acknowledged at a client hit some server's disk."""
        sim, cluster = build()
        wl = SequentialWrite(
            cluster, record_size=256 * KiB, instances_per_client=2, seed=0
        )
        wl.start()
        sim.run(until=15.0)
        wl.stop()
        client_total = cluster.total_bytes_written()
        server_total = sum(
            cluster.metrics.value(f"server.{s.server_id}.bytes_written")
            for s in cluster.servers
        )
        # Server completion precedes client acknowledgement (reply in
        # flight), so servers may only be marginally ahead.
        assert server_total >= client_total
        assert server_total - client_total < 5 * MiB

    def test_disk_stats_match_server_metrics(self):
        sim, cluster = build()
        wl = RandomReadWrite(cluster, read_fraction=0.5, seed=1)
        wl.start()
        sim.run(until=10.0)
        # Disk stats account at batch-planning time, server metrics at
        # completion; quiesce so no batch is in flight when comparing.
        wl.stop()
        sim.run()
        for s in cluster.servers:
            assert s.disk.stats.bytes_written == cluster.metrics.value(
                f"server.{s.server_id}.bytes_written"
            )
            assert s.disk.stats.bytes_read == cluster.metrics.value(
                f"server.{s.server_id}.bytes_read"
            )

    def test_workload_byte_accounting_matches_cluster(self):
        sim, cluster = build()
        wl = RandomReadWrite(cluster, read_fraction=1.0, seed=2)
        wl.start()
        sim.run(until=10.0)
        wl.stop()
        sim.run(until=12.0)  # drain in-flight reads
        assert wl.stats.bytes_read == cluster.total_bytes_read()


class TestDeterminism:
    def test_identical_runs_identical_state(self):
        def run():
            sim, cluster = build()
            wl = RandomReadWrite(cluster, read_fraction=0.3, seed=9)
            wl.start()
            sim.run(until=20.0)
            return (
                cluster.total_bytes(),
                sim.events_processed,
                [s.queue_depth for s in cluster.servers],
            )

        assert run() == run()

    @settings(max_examples=8, deadline=None)
    @given(until=st.floats(min_value=1.0, max_value=15.0))
    def test_determinism_holds_at_any_horizon(self, until):
        def run():
            sim, cluster = build()
            wl = RandomReadWrite(cluster, read_fraction=0.5, seed=4)
            wl.start()
            sim.run(until=until)
            return cluster.total_bytes(), sim.events_processed

        assert run() == run()


class TestWindowEnforcementUnderTuning:
    def test_inflight_never_exceeds_live_window(self):
        """Resize the window every second; the cap must always hold."""
        sim, cluster = build()
        wl = RandomReadWrite(cluster, read_fraction=0.0, seed=0)
        wl.start()
        violations = []

        def tuner():
            values = [8, 2, 5, 1, 7, 3]
            for v in values:
                cluster.set_max_rpcs_in_flight(v)
                for _ in range(20):
                    yield Timeout(0.05)
                    for c in cluster.clients:
                        for osc in c.oscs.values():
                            # transient overshoot is allowed only right
                            # after a shrink; after 0.5 s it must obey
                            pass
            # final check after settling on the last value
            yield Timeout(2.0)
            for c in cluster.clients:
                for osc in c.oscs.values():
                    if osc.in_flight > 3:
                        violations.append(osc.in_flight)

        sim.spawn(tuner())
        sim.run(until=12.0)
        assert violations == []

    def test_rate_limit_enforced_mid_run(self):
        sim, cluster = build()
        wl = RandomReadWrite(cluster, read_fraction=0.0, io_size=32 * KiB, seed=0)
        wl.start()
        sim.run(until=5.0)
        sent_before = sum(
            osc.rpcs_sent.value
            for c in cluster.clients
            for osc in c.oscs.values()
        )
        cluster.set_io_rate_limit(2.0)  # 2 RPCs/s per client
        sim.run(until=15.0)
        sent_after = sum(
            osc.rpcs_sent.value
            for c in cluster.clients
            for osc in c.oscs.values()
        )
        # 10 s at 2/s × 2 clients = 40 RPCs, plus each client's bucket
        # can hold a full burst at the moment of the rate change, plus
        # one in-flight acquire per OSC that already held a token.
        allowance = 40 + 2 * cluster.config.rate_burst + 4
        assert sent_after - sent_before <= allowance


class TestReplayConsistency:
    def test_sqlite_and_cache_agree_after_session(self, tmp_path):
        env = StorageTuningEnv(
            EnvConfig(
                cluster=ClusterConfig(n_servers=2, n_clients=2),
                workload_factory=lambda c, s: RandomReadWrite(
                    c, read_fraction=0.2, instances_per_client=2, seed=s
                ),
                hp=FAST_HP,
                db_path=str(tmp_path / "replay.sqlite"),
                seed=0,
            )
        )
        session = CapesSession(env, seed=0)
        session.train(15)
        db = env.db
        assert db.record_count() == len(db.cache)
        # spot-check random ticks
        import sqlite3

        rows = db._conn.execute(
            "SELECT tick, reward FROM observations ORDER BY tick"
        ).fetchall()
        for tick, reward in rows[::5]:
            assert db.cache.get(tick).reward == pytest.approx(reward)

    def test_actions_in_db_match_histogram(self):
        env = StorageTuningEnv(
            EnvConfig(
                cluster=ClusterConfig(n_servers=2, n_clients=2),
                workload_factory=lambda c, s: RandomReadWrite(
                    c, read_fraction=0.2, instances_per_client=2, seed=s
                ),
                hp=FAST_HP,
                seed=0,
            )
        )
        session = CapesSession(env, seed=0)
        result = session.train(20)
        stored = [
            env.db.cache.get(t).action
            for t in range(env.db.cache.min_tick, env.db.cache.max_tick + 1)
            if env.db.cache.has(t) and env.db.cache.get(t).action >= 0
        ]
        hist = np.bincount(stored, minlength=env.n_actions)
        np.testing.assert_array_equal(hist, result.action_counts)


class TestScheduleEpsilonWiring:
    def test_phase_changes_bump_epsilon(self):
        env = StorageTuningEnv(
            EnvConfig(
                cluster=ClusterConfig(n_servers=2, n_clients=2),
                workload_factory=lambda c, s: RandomReadWrite(
                    c, read_fraction=0.5, instances_per_client=1, seed=s
                ),
                hp=FAST_HP,
                seed=0,
            )
        )
        session = CapesSession(env, seed=0)
        session.ensure_started()
        # drive ε to the floor
        for _ in range(100):
            session.agent.epsilon.step()
        assert session.agent.epsilon.value == FAST_HP.epsilon_final

        extra_a = RandomReadWrite(
            env.cluster, read_fraction=1.0, instances_per_client=1, seed=5
        )
        extra_b = RandomReadWrite(
            env.cluster, read_fraction=0.0, instances_per_client=1, seed=6
        )
        sched = WorkloadSchedule(
            env.sim,
            [WorkloadPhase(extra_a, 3.0), WorkloadPhase(extra_b, 3.0)],
        )
        session.attach_schedule(sched)
        sched.start()
        session.train(8)
        assert session.agent.epsilon.bumps >= 1


class TestTracerDuringTuning:
    def test_latency_improves_when_leaving_collapse(self):
        """Shrinking the window out of collapse lowers p90 latency."""
        def p90_at(window):
            sim, cluster = build(n_clients=5)
            wl = RandomReadWrite(
                cluster, read_fraction=0.1, instances_per_client=5, seed=0
            )
            wl.start()
            cluster.set_max_rpcs_in_flight(window)
            sim.run(until=5.0)
            with RequestTracer(cluster) as tracer:
                sim.run(until=25.0)
            return tracer.summary("write").p90

        assert p90_at(4) < p90_at(32)
