"""Tests for the storage-device models (repro.cluster.disk)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.disk import HDDModel, SSDModel
from repro.cluster.rpc import Request, RequestKind
from repro.util.units import KiB, MiB


def make_req(kind=RequestKind.WRITE, obj_id=1, offset=0, size=32 * KiB):
    return Request(
        kind=kind, obj_id=obj_id, offset=offset, size=size, client_id=0, server_id=0
    )


class TestHDDGeometry:
    def test_lba_mapping_is_deterministic(self):
        d = HDDModel()
        assert d.lba_of(7, 100) == d.lba_of(7, 100)

    def test_lba_contiguous_within_object(self):
        d = HDDModel()
        assert d.lba_of(3, 4096) - d.lba_of(3, 0) == 4096

    def test_lba_objects_scattered(self):
        d = HDDModel()
        assert d.lba_of(1, 0) != d.lba_of(2, 0)

    def test_seek_time_zero_distance(self):
        d = HDDModel()
        assert d._seek_time(0) == 0.0

    def test_seek_time_monotone_in_distance(self):
        d = HDDModel()
        short = d._seek_time(1 * MiB)
        long = d._seek_time(100 * MiB)
        assert 0 < short < long <= d.max_seek + 1e-12

    def test_rotational_latency_matches_rpm(self):
        d = HDDModel(rpm=7200)
        assert d.rot_latency == pytest.approx(60.0 / 7200 / 2)

    def test_invalid_seek_order_rejected(self):
        with pytest.raises(ValueError):
            HDDModel(min_seek_ms=5.0, max_seek_ms=1.0)


class TestHDDPlanning:
    def test_sequential_same_object_merges(self):
        """Contiguous same-object writes cost one positioning operation."""
        d = HDDModel()
        reqs = [make_req(offset=i * 64 * KiB, size=64 * KiB) for i in range(4)]
        plan = d.plan_batch(reqs)
        assert len(plan) == 4
        transfer = 64 * KiB / d.write_bw
        # First op pays seek+rot; the rest are pure transfer.
        assert plan[0][1] > transfer
        for _req, dur in plan[1:]:
            assert dur == pytest.approx(transfer)

    def test_noncontiguous_each_pays_positioning(self):
        d = HDDModel()
        reqs = [
            make_req(obj_id=i + 1, offset=0, size=32 * KiB) for i in range(4)
        ]
        plan = d.plan_batch(reqs)
        transfer = 32 * KiB / d.write_bw
        for _req, dur in plan:
            assert dur > transfer + d.rot_latency * 0.5

    def test_elevator_sorting_reduces_total_batch_time(self):
        """A deep sorted batch must beat the same requests one at a time."""
        rng = np.random.default_rng(0)
        offsets = rng.integers(0, 2**30, size=16) * 4096
        batched = HDDModel()
        reqs = [
            make_req(obj_id=9, offset=int(o), size=32 * KiB) for o in offsets
        ]
        t_batched = sum(dur for _r, dur in batched.plan_batch(reqs))

        serial = HDDModel()
        t_serial = 0.0
        for o in offsets:
            r = make_req(obj_id=9, offset=int(o), size=32 * KiB)
            t_serial += sum(dur for _r, dur in serial.plan_batch([r]))
        assert t_batched < 0.8 * t_serial

    def test_deeper_batches_have_lower_per_request_cost(self):
        """Monotone improvement with depth — the mechanism CAPES exploits."""
        rng = np.random.default_rng(1)
        per_req = {}
        for depth in (1, 4, 16, 64):
            d = HDDModel()
            offs = rng.integers(0, 2**32, size=depth) * 4096
            reqs = [
                make_req(obj_id=5, offset=int(o), size=32 * KiB) for o in offs
            ]
            total = sum(dur for _r, dur in d.plan_batch(reqs))
            per_req[depth] = total / depth
        assert per_req[64] < per_req[16] < per_req[4] < per_req[1]

    def test_rotational_floor_limits_gains(self):
        """Sorting cannot push cost below rotation + transfer."""
        rng = np.random.default_rng(2)
        d = HDDModel()
        offs = rng.integers(0, 2**32, size=128) * 4096
        reqs = [make_req(obj_id=5, offset=int(o), size=32 * KiB) for o in offs]
        total = sum(dur for _r, dur in d.plan_batch(reqs))
        floor = 128 * (d.rot_latency + 32 * KiB / d.write_bw)
        assert total >= floor * 0.99

    def test_meta_requests_fixed_cost(self):
        d = HDDModel(meta_ms=2.0)
        plan = d.plan_batch([make_req(kind=RequestKind.META, size=0)])
        assert plan[0][1] == pytest.approx(0.002)

    def test_read_and_write_use_respective_bandwidths(self):
        d = HDDModel(seq_read_mbps=100, seq_write_mbps=50)
        r = make_req(kind=RequestKind.READ, obj_id=1, offset=0, size=MiB)
        w = make_req(kind=RequestKind.WRITE, obj_id=1, offset=0, size=MiB)
        (_, rd), = d.plan_batch([r])
        d2 = HDDModel(seq_read_mbps=100, seq_write_mbps=50)
        (_, wd), = d2.plan_batch([w])
        # Strip identical positioning; write transfer is 2x read transfer.
        pos = d.min_seek  # same first-seek distance both times
        assert (wd - rd) == pytest.approx(MiB / d.write_bw - MiB / d.read_bw)

    def test_stats_accumulate(self):
        d = HDDModel()
        d.plan_batch([make_req(kind=RequestKind.READ, size=MiB)])
        d.plan_batch([make_req(kind=RequestKind.WRITE, size=2 * MiB)])
        assert d.stats.bytes_read == MiB
        assert d.stats.bytes_written == 2 * MiB
        assert d.stats.ops == 2
        assert d.stats.busy_time > 0


class TestSSD:
    def test_no_benefit_from_batching(self):
        rng = np.random.default_rng(3)
        offs = rng.integers(0, 2**32, size=8) * 4096
        reqs = [make_req(obj_id=2, offset=int(o)) for o in offs]
        batched = SSDModel()
        t_batched = sum(d for _r, d in batched.plan_batch(reqs))
        serial = SSDModel()
        t_serial = sum(
            sum(d for _r, d in serial.plan_batch([r]))
            for r in (
                make_req(obj_id=2, offset=int(o)) for o in offs
            )
        )
        assert t_batched == pytest.approx(t_serial)

    def test_latency_plus_transfer(self):
        s = SSDModel(read_mbps=500, op_latency_ms=0.1)
        (_, d), = s.plan_batch([make_req(kind=RequestKind.READ, size=MiB)])
        assert d == pytest.approx(0.0001 + MiB / s.read_bw)


@settings(max_examples=30, deadline=None)
@given(
    offsets=st.lists(
        st.integers(min_value=0, max_value=2**34), min_size=1, max_size=32
    )
)
def test_plan_includes_every_request_exactly_once(offsets):
    """Property: planning is a permutation — nothing dropped or duplicated."""
    d = HDDModel()
    reqs = [make_req(obj_id=4, offset=o * 4096, size=4096) for o in offsets]
    plan = d.plan_batch(reqs)
    assert sorted(r.req_id for r, _ in plan) == sorted(r.req_id for r in reqs)
    assert all(dur >= 0 for _r, dur in plan)
