"""Properties of the fuzzed-scenario generator (repro.scenarios.fuzz).

Reproducibility is the load-bearing half of the fuzzer: a frontier
entry is only evidence if its ``fuzz-<root_seed>-<index>`` name
rebuilds the exact timeline in any process.  These tests pin that —
golden blake2b digests of the canonical event serialization (computed
once; every pytest run is a fresh interpreter, so matching them *is*
the cross-invocation check, same style as test_scenario_golden.py) —
plus the structural properties every generated timeline must hold:
picklable, composable via ``+``, registry-resolvable, and honouring
the WorkloadPhaseShift disjointness contract.
"""

import hashlib
import json
import math
import pickle

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.scenarios import (
    Scenario,
    ScenarioEvent,
    WorkloadPhaseShift,
    event_from_dict,
    event_to_dict,
    has_scenario,
    make_scenario,
    sample_scenario,
    sample_timeline,
    scenario_names,
)
from repro.scenarios import strategies as fuzz_st
from repro.scenarios.fuzz import (
    DEFAULT_HORIZON,
    SEEDED_BURSTY_NAME,
    repair_timeline,
    seeded_bursty_events,
)
from repro.util.rng import derive_rng, ensure_rng

#: blake2b-128 over the canonical (sort_keys) JSON serialization of
#: ``sample_scenario(root_seed, index).events``.  Computed once and
#: pinned: drift means fuzzed frontier entries stopped being one-line
#: repros across invocations — a regression, not a constant to refresh.
GOLDEN_TIMELINE_DIGESTS = {
    (17, 0): "0fadeb2e81ebc16be06a76f0a4ef253e",
    (17, 1): "208e933265aa56803de2d422bbd6bba0",
    (17, 2): "537689051cecf406d1d3e9868e8969c7",
    (42, 0): "39f5d910e47b96bc6ea52cb9025a2702",
    (42, 7): "e44f86ac724171ae174dfa7507dffe00",
}


def timeline_digest(events) -> str:
    """Canonical digest of an event tuple (JSON, sorted keys)."""
    canon = json.dumps([event_to_dict(e) for e in events], sort_keys=True)
    return hashlib.blake2b(canon.encode(), digest_size=16).hexdigest()


class TestNameDerivation:
    @pytest.mark.parametrize(
        "root_seed,index", sorted(GOLDEN_TIMELINE_DIGESTS)
    )
    def test_pinned_timeline_digest(self, root_seed, index):
        sc = sample_scenario(root_seed, index)
        assert timeline_digest(sc.events) == GOLDEN_TIMELINE_DIGESTS[
            (root_seed, index)
        ], (
            f"fuzz-{root_seed}-{index} drifted: fuzzed timelines are no "
            f"longer byte-identically re-derivable across invocations"
        )

    def test_sampling_is_pure_in_root_seed_and_index(self):
        # derive_rng consumes parent state, so purity here means the
        # generator builds a fresh root every call — earlier draws of
        # other indices must not shift later ones.
        a = sample_scenario(99, 3)
        for i in range(3):
            sample_scenario(99, i)
        assert sample_scenario(99, 3) == a

    def test_registry_resolves_fuzz_names(self):
        sc = sample_scenario(42, 7)
        assert has_scenario("fuzz-42-7")
        assert make_scenario("fuzz-42-7") == sc
        # The family is unbounded, so it stays out of the exact-name
        # enumeration the benchmarks iterate exhaustively.
        assert "fuzz-42-7" not in scenario_names()
        assert not has_scenario("fuzz-42-")
        assert not has_scenario("fuzz-x-7")

    def test_seeded_bursty_resolves(self):
        sc = make_scenario(SEEDED_BURSTY_NAME)
        assert sc.events == seeded_bursty_events()
        assert len(sc.events) > 0

    def test_fuzzed_factory_round_trips_serialized_events(self):
        sc = sample_scenario(42, 0)
        wire = json.loads(
            json.dumps([event_to_dict(e) for e in sc.events])
        )
        rebuilt = make_scenario("fuzzed", name="anything", events=wire)
        assert rebuilt.events == sc.events


@settings(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(events=fuzz_st.timelines())
def test_generated_timelines_hold_structural_invariants(events):
    assert 1 <= len(events)
    for ev in events:
        assert isinstance(ev, ScenarioEvent)
        assert 1 <= ev.at_tick <= DEFAULT_HORIZON
        assert ev.duration_ticks is None or ev.duration_ticks >= 0
    # Picklable (specs carry timelines across process boundaries).
    assert pickle.loads(pickle.dumps(events)) == events
    # Composable via + (merged timeline preserves both event tuples).
    merged = Scenario("a", events) + Scenario("b", events)
    assert merged.events == events + events
    # Serialization round-trips exactly (floats are repr-exact).
    wire = json.loads(json.dumps([event_to_dict(e) for e in events]))
    assert tuple(event_from_dict(d) for d in wire) == events
    # Registry-resolvable through the "fuzzed" factory.
    assert make_scenario("fuzzed", events=wire).events == events
    # Repair is a fixpoint: generated timelines are already repaired.
    assert repair_timeline(events) == events


@settings(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(events=fuzz_st.timelines())
def test_phase_shift_windows_are_knob_disjoint(events):
    # WorkloadPhaseShift sets absolutes (set/restore does not compose),
    # so the generator must keep same-knob windows disjoint.
    occupied = {"read_fraction": [], "think_time": []}
    for ev in events:
        if not isinstance(ev, WorkloadPhaseShift) or ev.duration_ticks == 0:
            continue
        start = float(ev.at_tick)
        end = (
            math.inf
            if ev.duration_ticks is None
            else float(ev.at_tick + ev.duration_ticks)
        )
        for knob in ("read_fraction", "think_time"):
            if getattr(ev, knob) is None:
                continue
            assert not any(
                start < e and s < end for s, e in occupied[knob]
            ), f"overlapping {knob} phase-shift windows in {events}"
            occupied[knob].append((start, end))


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    root_seed=st.integers(min_value=0, max_value=2**31 - 1),
    index=st.integers(min_value=0, max_value=63),
)
def test_sampled_scenarios_rebuild_from_their_name(root_seed, index):
    sc = sample_scenario(root_seed, index)
    assert sc.name == f"fuzz-{root_seed}-{index}"
    rebuilt = make_scenario(sc.name)
    assert rebuilt == sc
    assert timeline_digest(rebuilt.events) == timeline_digest(sc.events)


def test_sample_timeline_is_a_pure_function_of_the_stream():
    rng1 = derive_rng(ensure_rng(5), "x")
    rng2 = derive_rng(ensure_rng(5), "x")
    assert sample_timeline(rng1) == sample_timeline(rng2)
