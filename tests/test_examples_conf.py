"""The shipped sample configuration must stay loadable and runnable."""

import pytest

from repro.core.capes import CAPES
from repro.core.config import load_config

CONF = "examples/conf_lustre.py"


def test_sample_conf_loads():
    cfg = load_config(CONF)
    assert cfg.env.cluster.n_clients == 5
    assert cfg.env.hp.adam_learning_rate == 5e-4
    assert cfg.loss == "huber"
    assert cfg.train_steps_per_tick == 4


def test_sample_conf_builds_and_steps():
    cfg = load_config(CONF)
    # shrink for test speed: fewer obs ticks, tiny net
    cfg.env.hp.hidden_layer_size = 8
    cfg.env.hp.sampling_ticks_per_observation = 3
    capes = CAPES(cfg)
    result = capes.train(5)
    assert result.n_ticks == 5
