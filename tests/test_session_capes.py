"""Integration tests: sessions, the CAPES facade, checkpointing."""

import numpy as np
import pytest

from repro import CAPES, CapesConfig, ClusterConfig, EnvConfig, hours
from repro.core import CapesSession
from repro.env import StorageTuningEnv
from repro.rl import Hyperparameters
from repro.workloads import RandomReadWrite

FAST_HP = Hyperparameters(
    hidden_layer_size=16,
    sampling_ticks_per_observation=3,
    exploration_ticks=30,
)


def fast_env_config(seed=0, read_fraction=0.1):
    return EnvConfig(
        cluster=ClusterConfig(n_servers=2, n_clients=2),
        workload_factory=lambda c, s: RandomReadWrite(
            c, read_fraction=read_fraction, instances_per_client=2, seed=s
        ),
        hp=FAST_HP,
        seed=seed,
    )


class TestHoursHelper:
    def test_conversion(self):
        assert hours(2) == 7200
        assert hours(0.5, tick_length=1.0) == 1800

    def test_too_small(self):
        with pytest.raises(ValueError):
            hours(0.0)


class TestCapesSession:
    def test_train_produces_result(self):
        session = CapesSession(StorageTuningEnv(fast_env_config()), seed=0)
        result = session.train(25)
        assert result.n_ticks == 25
        assert result.rewards.shape == (25,)
        assert result.epsilon_trace[0] > result.epsilon_trace[-1]
        assert result.action_counts.sum() == 25
        assert len(result.losses) > 0
        assert "max_rpcs_in_flight" in result.final_params

    def test_losses_are_finite(self):
        session = CapesSession(StorageTuningEnv(fast_env_config()), seed=0)
        result = session.train(20)
        assert np.isfinite(result.losses).all()

    def test_evaluate_after_train(self):
        session = CapesSession(StorageTuningEnv(fast_env_config()), seed=0)
        session.train(15)
        ev = session.evaluate(10)
        assert ev.n_ticks == 10
        assert len(ev.params_trace) == 10
        assert ev.mean_reward >= 0

    def test_segment_boundaries_commit_durable_replay(self, tmp_path):
        """Regression: nothing on the write path ever committed, so a
        crash mid-session lost the entire durable store that Figure 4's
        multi-session reload depends on.  Session segments (collect /
        train here) must leave the rows visible to an independent
        reader *before* the database is closed."""
        import sqlite3
        from dataclasses import replace

        path = str(tmp_path / "replay.sqlite")
        cfg = replace(fast_env_config(), db_path=path)
        session = CapesSession(StorageTuningEnv(cfg), seed=0)
        session.collect(5)

        def durable_rows():
            other = sqlite3.connect(path)
            (n,) = other.execute(
                "SELECT COUNT(*) FROM observations"
            ).fetchone()
            other.close()
            return n

        warm = FAST_HP.sampling_ticks_per_observation
        assert durable_rows() == warm + 5
        session.train(4)
        assert durable_rows() == warm + 9
        session.env.close()

    def test_measure_baseline_runs_without_actions(self):
        session = CapesSession(StorageTuningEnv(fast_env_config()), seed=0)
        rewards = session.measure_baseline(10)
        assert rewards.shape == (10,)
        # no actions -> parameters unchanged
        assert session.env.current_params()["max_rpcs_in_flight"] == 8.0

    def test_checkpoint_roundtrip(self, tmp_path):
        session = CapesSession(StorageTuningEnv(fast_env_config()), seed=0)
        session.train(15)
        path = tmp_path / "capes.npz"
        session.save(path)

        session2 = CapesSession(StorageTuningEnv(fast_env_config()), seed=1)
        session2.load(path)
        for a, b in zip(
            session.agent.online.net.get_weights(),
            session2.agent.online.net.get_weights(),
        ):
            np.testing.assert_array_equal(a, b)
        assert session2.agent.epsilon.value == pytest.approx(
            session.agent.epsilon.value
        )

    def test_checkpoint_topology_mismatch_rejected(self, tmp_path):
        session = CapesSession(StorageTuningEnv(fast_env_config()), seed=0)
        session.train(5)
        path = tmp_path / "capes.npz"
        session.save(path)
        other_hp = Hyperparameters(
            hidden_layer_size=8, sampling_ticks_per_observation=3
        )
        cfg = fast_env_config()
        cfg.hp = other_hp
        session3 = CapesSession(StorageTuningEnv(cfg), seed=0)
        with pytest.raises(ValueError):
            session3.load(path)

    def test_restart_environment_keeps_agent(self, tmp_path):
        session = CapesSession(StorageTuningEnv(fast_env_config()), seed=0)
        session.train(10)
        w_before = session.agent.online.net.get_weights()
        session.restart_environment()
        for a, b in zip(w_before, session.agent.online.net.get_weights()):
            np.testing.assert_array_equal(a, b)
        # environment is fresh
        assert session.env.current_params()["max_rpcs_in_flight"] == 8.0


class TestCapesFacade:
    def test_end_to_end_workflow(self):
        capes = CAPES(CapesConfig(env=fast_env_config(), seed=0))
        train = capes.train(20)
        baseline = capes.measure_baseline(8)
        tuned = capes.evaluate(8)
        assert train.n_ticks == 20
        assert baseline.shape == (8,)
        assert tuned.n_ticks == 8

    def test_technical_measurements(self):
        capes = CAPES(CapesConfig(env=fast_env_config(), seed=0))
        capes.train(12)
        m = capes.technical_measurements()
        assert m["replay_records"] >= 12
        assert m["model_bytes"] > 0
        assert m["observation_size"] == capes.env.obs_dim
        assert m["pis_per_client"] == 22  # 2 servers × 11 PIs
        assert m["mean_message_bytes"] > 0

    def test_save_load_via_facade(self, tmp_path):
        capes = CAPES(CapesConfig(env=fast_env_config(), seed=0))
        capes.train(10)
        p = tmp_path / "m.npz"
        capes.save(p)
        capes2 = CAPES(CapesConfig(env=fast_env_config(), seed=5))
        capes2.load(p)
        x = np.zeros(capes.env.obs_dim)
        np.testing.assert_array_equal(
            capes.session.agent.online.q_values(x),
            capes2.session.agent.online.q_values(x),
        )
