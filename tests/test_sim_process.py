"""Tests for processes and combinators (repro.sim.process)."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Interrupted,
    Simulator,
    SimulationError,
    Timeout,
)


class TestProcess:
    def test_process_runs_and_returns_value(self):
        sim = Simulator()

        def proc():
            yield Timeout(1.0)
            yield Timeout(2.0)
            return "done"

        p = sim.spawn(proc())
        sim.run()
        assert p.ok and p.value == "done"
        assert sim.now == 3.0

    def test_yield_receives_timeout_value(self):
        sim = Simulator()
        got = []

        def proc():
            v = yield Timeout(1.0, value="payload")
            got.append(v)

        sim.spawn(proc())
        sim.run()
        assert got == ["payload"]

    def test_process_waits_on_process(self):
        sim = Simulator()

        def child():
            yield Timeout(5.0)
            return 42

        def parent():
            result = yield sim.spawn(child())
            assert result == 42
            return sim.now

        p = sim.spawn(parent())
        sim.run()
        assert p.value == 5.0

    def test_two_processes_interleave(self):
        sim = Simulator()
        trace = []

        def worker(name, period):
            for _ in range(3):
                yield Timeout(period)
                trace.append((sim.now, name))

        sim.spawn(worker("a", 1.0))
        sim.spawn(worker("b", 1.5))
        sim.run()
        # At the t=3.0 tie, "b" resumes first: its timeout was created at
        # t=1.5, before "a"'s was created at t=2.0 (FIFO tie-breaking).
        assert trace == [
            (1.0, "a"),
            (1.5, "b"),
            (2.0, "a"),
            (3.0, "b"),
            (3.0, "a"),
            (4.5, "b"),
        ]

    def test_yielding_non_event_raises(self):
        sim = Simulator()

        def bad():
            yield 42

        sim.spawn(bad())
        with pytest.raises(SimulationError):
            sim.run()

    def test_spawn_requires_generator(self):
        sim = Simulator()
        with pytest.raises(TypeError):
            sim.spawn(lambda: None)  # type: ignore[arg-type]

    def test_crash_with_no_waiter_propagates(self):
        sim = Simulator()

        def boom():
            yield Timeout(1.0)
            raise RuntimeError("crash")

        sim.spawn(boom())
        with pytest.raises(RuntimeError, match="crash"):
            sim.run()

    def test_crash_with_waiter_fails_waiter(self):
        sim = Simulator()

        def boom():
            yield Timeout(1.0)
            raise ValueError("inner")

        def outer():
            try:
                yield sim.spawn(boom())
            except ValueError as e:
                return f"caught {e}"

        p = sim.spawn(outer())
        sim.run()
        assert p.value == "caught inner"

    def test_is_alive(self):
        sim = Simulator()

        def proc():
            yield Timeout(2.0)

        p = sim.spawn(proc())
        assert p.is_alive
        sim.run()
        assert not p.is_alive


class TestInterrupt:
    def test_interrupt_delivers_cause(self):
        sim = Simulator()
        log = []

        def sleeper():
            try:
                yield Timeout(100.0)
            except Interrupted as i:
                log.append((sim.now, i.cause))

        p = sim.spawn(sleeper())

        def interrupter():
            yield Timeout(3.0)
            p.interrupt(cause="reconfig")

        sim.spawn(interrupter())
        sim.run()
        assert log == [(3.0, "reconfig")]

    def test_interrupt_finished_process_raises(self):
        sim = Simulator()

        def quick():
            yield Timeout(1.0)

        p = sim.spawn(quick())
        sim.run()
        with pytest.raises(SimulationError):
            p.interrupt()

    def test_uncaught_interrupt_fails_process(self):
        sim = Simulator()

        def sleeper():
            yield Timeout(100.0)

        def outer():
            try:
                yield p
            except Interrupted:
                return "interrupted"

        p = sim.spawn(sleeper())
        o = sim.spawn(outer())

        def interrupter():
            yield Timeout(1.0)
            p.interrupt()

        sim.spawn(interrupter())
        sim.run()
        assert o.value == "interrupted"


class TestCombinators:
    def test_allof_collects_values_in_order(self):
        sim = Simulator()

        def proc():
            vals = yield AllOf(
                sim,
                [
                    sim.timeout(3.0, value="c"),
                    sim.timeout(1.0, value="a"),
                    sim.timeout(2.0, value="b"),
                ],
            )
            return vals

        p = sim.spawn(proc())
        sim.run()
        assert p.value == ["c", "a", "b"]
        assert sim.now == 3.0

    def test_allof_empty_fires_immediately(self):
        sim = Simulator()
        ev = AllOf(sim, [])
        sim.run()
        assert ev.ok and ev.value == []

    def test_allof_fails_on_first_child_failure(self):
        sim = Simulator()
        bad = sim.event()
        bad.fail(RuntimeError("nope"), delay=1.0)

        def proc():
            try:
                yield AllOf(sim, [sim.timeout(5.0), bad])
            except RuntimeError:
                return sim.now

        p = sim.spawn(proc())
        sim.run()
        assert p.value == 1.0

    def test_anyof_returns_first_winner(self):
        sim = Simulator()

        def proc():
            idx, val = yield AnyOf(
                sim,
                [sim.timeout(5.0, value="slow"), sim.timeout(1.0, value="fast")],
            )
            return idx, val, sim.now

        p = sim.spawn(proc())
        sim.run()
        assert p.value == (1, "fast", 1.0)

    def test_anyof_empty_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            AnyOf(sim, [])

    def test_combinators_bind_unbound_timeouts(self):
        sim = Simulator()

        def proc():
            vals = yield AllOf(sim, [Timeout(1.0, value=1), Timeout(2.0, value=2)])
            return vals

        p = sim.spawn(proc())
        sim.run()
        assert p.value == [1, 2]
