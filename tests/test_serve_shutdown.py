"""Signal-driven lifecycle of ``repro serve``, as a real subprocess.

The in-loop tests in test_serve.py cover the daemon's behaviour; this
file covers the part only a subprocess can: ``run_server`` installs
SIGINT/SIGTERM handlers that drain in-flight decisions, stop the
trainer backend, flush the replay store to disk, and exit 0.  A daemon
that dies on Ctrl-C with a traceback — or exits clean but loses the
replay rows it acknowledged — fails here.
"""

import asyncio
import os
import re
import signal
import sqlite3
import subprocess
import sys

import numpy as np
import pytest

from repro.serve import ServeClient

CONF = """
from repro.workloads import RandomReadWrite

N_SERVERS = 1
N_CLIENTS = 1
HIDDEN_LAYER_SIZE = 8
SAMPLING_TICKS_PER_OBSERVATION = 3
EXPLORATION_TICKS = 20
SEED = 7

def WORKLOAD(cluster, seed):
    return RandomReadWrite(
        cluster, read_fraction=0.1, instances_per_client=2, seed=seed)
"""

ANNOUNCE = re.compile(r"serving on 127\.0\.0\.1:(\d+)")


@pytest.fixture
def conf_path(tmp_path):
    p = tmp_path / "conf.py"
    p.write_text(CONF)
    return str(p)


def launch_server(conf_path, out_path):
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--config", conf_path,
            "--port", "0",
            "--trainer-backend", "serial",
            "--out", str(out_path),
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    line = proc.stdout.readline()
    match = ANNOUNCE.search(line)
    if match is None:
        proc.kill()
        out, err = proc.communicate(timeout=10)
        raise AssertionError(
            f"no announce line; stdout={line + out!r} stderr={err!r}"
        )
    return proc, int(match.group(1))


def drive_ticks(port, n_ticks, frame_width):
    """Stream ``n_ticks`` frames from one client, then say BYE."""

    async def body():
        rng = np.random.default_rng(3)
        client = ServeClient("127.0.0.1", port, "sig-test", frame_width)
        welcome = await client.connect()
        assert welcome["frame_width"] == frame_width
        frame = rng.normal(size=frame_width)
        for t in range(n_ticks):
            frame = frame + rng.normal(size=frame_width) * 0.1
            await client.tick(t + 1, frame, reward=0.2)
        await client.close()
        return client.decisions

    return asyncio.run(body())


@pytest.mark.parametrize("sig", [signal.SIGINT, signal.SIGTERM])
def test_signal_drains_and_exits_zero(conf_path, tmp_path, sig):
    out_path = tmp_path / "serve-replay.sqlite"
    proc, port = launch_server(conf_path, out_path)
    try:
        # The client must present the same frame geometry the daemon
        # derived from the conf; derive it the same way.
        from repro.cli import _serve_geometry, load_config

        width, _ = _serve_geometry(load_config(conf_path))
        n_ticks = 10
        decisions = drive_ticks(port, n_ticks, width)
        assert decisions > 0
        proc.send_signal(sig)
        out, err = proc.communicate(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate(timeout=10)
    assert proc.returncode == 0, f"exit {proc.returncode}; stderr={err!r}"
    assert "Traceback" not in err and "BrokenPipeError" not in err
    # The summary proves the drain path ran to completion.
    assert re.search(r"served \d+ decisions over 10 frames", out), out
    assert "trained" in out  # serial trainer was stopped, not abandoned
    # And the store was flushed durably: every acknowledged tick is
    # readable from the sqlite file after the process is gone.
    con = sqlite3.connect(out_path)
    try:
        (rows,) = con.execute(
            "SELECT COUNT(*) FROM observations"
        ).fetchone()
    finally:
        con.close()
    assert rows == n_ticks


def test_signal_with_no_clients_exits_zero(conf_path, tmp_path):
    out_path = tmp_path / "idle-replay.sqlite"
    proc, _ = launch_server(conf_path, out_path)
    try:
        proc.send_signal(signal.SIGINT)
        out, err = proc.communicate(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate(timeout=10)
    assert proc.returncode == 0, f"exit {proc.returncode}; stderr={err!r}"
    assert "served 0 decisions over 0 frames" in out
