"""Tests for repro.util.ringbuffer."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util import RingBuffer


class TestRingBufferScalar:
    def test_empty(self):
        rb = RingBuffer(4)
        assert len(rb) == 0
        assert not rb.full
        assert rb.view().shape == (0,)

    def test_append_below_capacity(self):
        rb = RingBuffer(4)
        rb.append(1.0)
        rb.append(2.0)
        np.testing.assert_array_equal(rb.view(), [1.0, 2.0])

    def test_wraps_and_keeps_newest(self):
        rb = RingBuffer(3)
        for x in range(5):
            rb.append(float(x))
        np.testing.assert_array_equal(rb.view(), [2.0, 3.0, 4.0])
        assert rb.full

    def test_newest(self):
        rb = RingBuffer(3)
        rb.append(1.0)
        rb.append(9.0)
        assert rb.newest() == 9.0

    def test_newest_empty_raises(self):
        with pytest.raises(IndexError):
            RingBuffer(2).newest()

    def test_last_n(self):
        rb = RingBuffer(5)
        for x in range(5):
            rb.append(float(x))
        np.testing.assert_array_equal(rb.last(2), [3.0, 4.0])
        np.testing.assert_array_equal(rb.last(10), [0, 1, 2, 3, 4])

    def test_last_negative_raises(self):
        rb = RingBuffer(2)
        rb.append(0.0)
        with pytest.raises(ValueError):
            rb.last(-1)

    def test_clear(self):
        rb = RingBuffer(3)
        rb.append(1.0)
        rb.clear()
        assert len(rb) == 0
        rb.append(5.0)
        np.testing.assert_array_equal(rb.view(), [5.0])

    def test_mean(self):
        rb = RingBuffer(4)
        for x in (1.0, 2.0, 3.0):
            rb.append(x)
        assert rb.mean() == pytest.approx(2.0)

    def test_mean_empty_raises(self):
        with pytest.raises(ValueError):
            RingBuffer(2).mean()

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            RingBuffer(0)


class TestRingBufferVector:
    def test_row_shape(self):
        rb = RingBuffer(3, shape=2)
        rb.append([1.0, 2.0])
        rb.append([3.0, 4.0])
        out = rb.view()
        assert out.shape == (2, 2)
        np.testing.assert_array_equal(out[1], [3.0, 4.0])

    def test_extend(self):
        rb = RingBuffer(3, shape=(2,))
        rb.extend(np.arange(8.0).reshape(4, 2))
        out = rb.view()
        assert out.shape == (3, 2)
        np.testing.assert_array_equal(out[0], [2.0, 3.0])

    def test_view_is_copy(self):
        rb = RingBuffer(2, shape=2)
        rb.append([1.0, 1.0])
        v = rb.view()
        v[:] = -1
        np.testing.assert_array_equal(rb.view(), [[1.0, 1.0]])


@given(
    capacity=st.integers(min_value=1, max_value=16),
    xs=st.lists(st.floats(allow_nan=False, allow_infinity=False, width=32), max_size=64),
)
def test_ring_matches_list_suffix(capacity, xs):
    """Property: a ring buffer is always the last `capacity` appends."""
    rb = RingBuffer(capacity)
    for x in xs:
        rb.append(x)
    expected = np.asarray(xs[-capacity:], dtype=np.float64)
    np.testing.assert_array_equal(rb.view(), expected)
    assert len(rb) == min(len(xs), capacity)
