"""Deterministic session snapshot/resume (repro.snapshot).

The acceptance contract: snapshot a session at tick T, rebuild every
object in fresh state (a different interpreter in the CLI test), resume
— and the remaining ticks are **byte-identical** to the uninterrupted
run, verified through the chained rollout digest, captured weights, and
the replay record stream.  Plus the artifact's own integrity story:
format versioning, digest verification, and truncation rejection.
"""

import subprocess
import sys
from dataclasses import replace
from pathlib import Path

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterConfig
from repro.env import EnvConfig, VectorEnv
from repro.replaydb import CACHE_ONLY
from repro.rl import DQNAgent, Hyperparameters
from repro.scenarios import DiskDegradation, LoadSpike, Scenario
from repro.snapshot import (
    FORMAT_VERSION,
    RolloutDigest,
    SessionSnapshot,
    SnapshotError,
    build_session_snapshot,
    run_collect_session,
    snapshot_path,
)
from repro.train import TrainerConfig
from repro.util.rng import derive_rng, ensure_rng
from repro.workloads import RandomReadWrite

TINY_HP = Hyperparameters(
    hidden_layer_size=8,
    exploration_ticks=20,
    sampling_ticks_per_observation=3,
)

BACKENDS = ("serial", "fork", "vec")


def tiny_workload(cluster, seed):
    return RandomReadWrite(
        cluster, read_fraction=0.1, seed=seed, instances_per_client=2
    )


def tiny_config(seed: int = 0, scenario=None) -> EnvConfig:
    return EnvConfig(
        cluster=ClusterConfig(n_servers=2, n_clients=2),
        workload_factory=tiny_workload,
        hp=TINY_HP,
        seed=seed,
        scenario=scenario,
    )


def composed_scenario() -> Scenario:
    return Scenario(
        "composed",
        (
            DiskDegradation(
                at_tick=5, duration_ticks=8, throughput_factor=0.5
            ),
            LoadSpike(at_tick=10, duration_ticks=6),
        ),
    )


def make_venv(backend: str, scenario=None, n: int = 2) -> VectorEnv:
    return VectorEnv.from_config(
        tiny_config(seed=9, scenario=scenario),
        n,
        backend=backend,
        tick_stride=256,
    )


# -- core artifact -----------------------------------------------------------


class TestSessionSnapshotArtifact:
    def roundtrip(self, tmp_path):
        snap = SessionSnapshot()
        snap.put(
            "layer",
            meta={"answer": 42, "nested": {"pi": 3.14}},
            arrays={"xs": np.arange(7, dtype=np.int64)},
        )
        path = snap.save(tmp_path / "artifact.npz")
        return snap, SessionSnapshot.load(path), path

    def test_save_load_roundtrip(self, tmp_path):
        before, after, _ = self.roundtrip(tmp_path)
        assert after.section("layer")["answer"] == 42
        np.testing.assert_array_equal(
            after.section_arrays("layer")["xs"], np.arange(7)
        )
        assert before.digest() == after.digest()

    def test_corruption_is_rejected(self, tmp_path):
        _, _, path = self.roundtrip(tmp_path)
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises((SnapshotError, Exception)):
            SessionSnapshot.load(path)

    def test_unknown_format_version_is_rejected(self, tmp_path):
        snap = SessionSnapshot()
        snap.put("layer", meta={"v": 1})
        path = snap.save(tmp_path / "artifact.npz")
        loaded = SessionSnapshot.load(path)
        # Re-save with a doctored format marker.
        raw = np.load(path, allow_pickle=False)
        import json

        meta = json.loads(bytes(raw["__meta__"]).decode("utf-8"))
        meta["__integrity__"]["format"] = FORMAT_VERSION + 1
        doctored = tmp_path / "doctored.npz"
        np.savez(
            doctored,
            __meta__=np.frombuffer(
                json.dumps(meta).encode("utf-8"), dtype=np.uint8
            ),
        )
        with pytest.raises(SnapshotError, match="format"):
            SessionSnapshot.load(doctored)
        assert loaded.section("layer")["v"] == 1

    def test_section_name_rules(self):
        snap = SessionSnapshot()
        with pytest.raises(SnapshotError):
            snap.put("a::b", meta={})
        snap.put("ok", meta={})
        with pytest.raises(SnapshotError):
            snap.section("missing")


class TestRolloutDigest:
    def test_chunking_is_invariant(self):
        rng = np.random.default_rng(4)
        rewards = rng.normal(size=(3, 12))
        whole = RolloutDigest()
        whole.update(rewards)
        pieces = RolloutDigest()
        for lo in range(0, 12, 5):
            pieces.update(rewards[:, lo : lo + 5])
        assert whole == pieces
        assert whole.hexdigest == pieces.hexdigest

    def test_state_round_trips_through_hex(self):
        first = RolloutDigest()
        first.update(np.ones((2, 4)))
        second = RolloutDigest(first.hexdigest)
        first.update(np.zeros((2, 2)))
        second.update(np.zeros((2, 2)))
        assert first == second

    def test_order_matters(self):
        a, b = RolloutDigest(), RolloutDigest()
        a.update(np.array([[1.0], [2.0]]))
        a.update(np.array([[3.0], [4.0]]))
        b.update(np.array([[3.0], [4.0]]))
        b.update(np.array([[1.0], [2.0]]))
        assert a != b


# -- golden resume, per backend ----------------------------------------------


def collect_with_midpoint_snapshot(backend, scenario, tmp_path):
    """40 ticks with a snapshot at 20; returns (digest, snapshot path)."""
    venv = make_venv(backend, scenario)
    try:
        outcome = run_collect_session(
            venv,
            40,
            chunk=5,
            snapshot_every=20,
            snapshot_dir=tmp_path,
        )
    finally:
        venv.close()
    return outcome.digest.hexdigest, snapshot_path(tmp_path, 20)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("with_scenario", (False, True))
def test_resume_is_byte_identical(backend, with_scenario, tmp_path):
    """The tentpole golden: snapshot at tick 20 of 40, resume in fresh
    objects, and the full-run digests agree — for every env backend,
    with and without a composed scenario timeline mid-flight."""
    scenario = composed_scenario() if with_scenario else None
    full_digest, midpoint = collect_with_midpoint_snapshot(
        backend, scenario, tmp_path
    )
    assert midpoint.exists()

    venv = make_venv(backend, scenario)
    try:
        resumed = run_collect_session(
            venv,
            40,
            chunk=5,
            resume_from=SessionSnapshot.load(midpoint),
        )
    finally:
        venv.close()
    assert resumed.start_tick == 20
    assert resumed.rewards.shape == (2, 20)
    assert resumed.digest.hexdigest == full_digest


def test_serial_and_fork_snapshots_interchange(tmp_path):
    """Op-log snapshots are transport-independent: a snapshot taken by
    the serial backend resumes byte-identically under fork."""
    full_digest, midpoint = collect_with_midpoint_snapshot(
        "serial", None, tmp_path
    )
    venv = make_venv("fork")
    try:
        resumed = run_collect_session(
            venv, 40, chunk=5, resume_from=SessionSnapshot.load(midpoint)
        )
    finally:
        venv.close()
    assert resumed.digest.hexdigest == full_digest


# -- trained sessions --------------------------------------------------------


def trained_session(tmp_path=None, resume_from=None, stop=40):
    venv = VectorEnv.from_config(
        tiny_config(seed=9),
        2,
        backend="serial",
        shared_db_path=CACHE_ONLY,
        tick_stride=256,
    )
    root = ensure_rng(31)
    agent = DQNAgent(
        obs_dim=venv.obs_dim,
        n_actions=venv.n_actions,
        hp=venv.hp,
        rng=derive_rng(root, "agent"),
    )
    sampler_seed = int(derive_rng(root, "sampler").integers(2**31))
    try:
        outcome = run_collect_session(
            venv,
            stop,
            chunk=5,
            agent=agent,
            trainer_config=TrainerConfig(
                backend="serial", train_ratio=1.0, sync_every=4
            ),
            sampler_seed=sampler_seed,
            snapshot_every=20 if tmp_path else None,
            snapshot_dir=tmp_path,
            resume_from=resume_from,
        )
    finally:
        venv.close()
    return outcome, agent


def test_trained_resume_matches_weights_and_digest(tmp_path):
    """Training state survives: the resumed run's digest *and* final
    weights (optimizer moments included) equal the uninterrupted run's."""
    full, agent_full = trained_session(tmp_path=tmp_path)
    midpoint = snapshot_path(tmp_path, 20)
    assert midpoint.exists()
    resumed, agent_resumed = trained_session(
        resume_from=SessionSnapshot.load(midpoint)
    )
    assert resumed.digest.hexdigest == full.digest.hexdigest
    assert agent_resumed.snapshot_weights(
        include_optimizer=True
    ) == agent_full.snapshot_weights(include_optimizer=True)
    assert (
        resumed.trainer_stats.steps_attempted
        == full.trainer_stats.steps_attempted
    )


# -- restore is a fixed point ------------------------------------------------


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    backend=st.sampled_from(BACKENDS),
    ticks=st.integers(min_value=1, max_value=12),
)
def test_snapshot_restore_snapshot_is_identity(backend, ticks):
    """Property: restoring a snapshot and re-capturing immediately
    yields a byte-identical artifact (digest equality), at any tick."""
    venv = make_venv(backend)
    try:
        outcome = run_collect_session(venv, ticks, chunk=3)
        first = build_session_snapshot(venv, ticks, ticks, outcome.digest)
        venv.restore(
            {
                "meta": first.section("env"),
                "arrays": first.section_arrays("env"),
            }
        )
        second = build_session_snapshot(venv, ticks, ticks, outcome.digest)
        assert first.digest() == second.digest()
    finally:
        venv.close()


def test_env_method_invalidates_oplog_snapshot():
    """Out-of-band worker mutation breaks op-log replayability; the
    snapshot must refuse rather than capture a lie."""
    venv = make_venv("serial")
    try:
        venv.reset()
        venv.collect(2, chunk=2)
        venv.env_method(0, "current_params")
        with pytest.raises(SnapshotError, match="env_method"):
            venv.snapshot()
    finally:
        venv.close()


# -- the CLI, across interpreters --------------------------------------------


MINIMAL_CONF = """
from repro.workloads import RandomReadWrite

N_SERVERS = 2
N_CLIENTS = 2
HIDDEN_LAYER_SIZE = 8
SAMPLING_TICKS_PER_OBSERVATION = 3
EXPLORATION_TICKS = 20
SEED = 7

def WORKLOAD(cluster, seed):
    return RandomReadWrite(
        cluster, read_fraction=0.1, instances_per_client=2, seed=seed)
"""


@pytest.mark.slow
def test_cli_resume_across_interpreters(tmp_path):
    """Two separate interpreter invocations produce one digest: a full
    40-tick run in one process equals 20 ticks + ``repro resume`` in
    two others.  This is the strongest form of the determinism claim —
    nothing survives but the artifact."""
    conf = tmp_path / "conf.py"
    conf.write_text(MINIMAL_CONF)

    def cli(*argv):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.cli", *argv],
            capture_output=True,
            text=True,
            cwd="/root/repo",
            env={"PYTHONPATH": "/root/repo/src", "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0, proc.stderr
        return proc.stdout

    def digest_line(out):
        for line in out.splitlines():
            if line.startswith("rollout digest:"):
                return line.split(":", 1)[1].strip()
        raise AssertionError(f"no digest line in: {out}")

    full_dir, part_dir = tmp_path / "full", tmp_path / "part"
    full = cli(
        "collect", "--config", str(conf), "--ticks", "40", "--chunk", "5",
        "--snapshot-every", "40", "--snapshot-dir", str(full_dir),
    )
    partial = cli(
        "collect", "--config", str(conf), "--ticks", "20", "--chunk", "5",
        "--snapshot-every", "20", "--snapshot-dir", str(part_dir),
    )
    resumed = cli(
        "resume", str(part_dir / "snapshot-00000020.npz"),
        "--config", str(conf), "--ticks", "40",
    )
    assert digest_line(resumed) == digest_line(full)
    assert digest_line(partial) != digest_line(full)


@pytest.mark.slow
def test_cli_replay_time_travels_to_midpoint(tmp_path):
    conf = tmp_path / "conf.py"
    conf.write_text(MINIMAL_CONF)
    snaps = tmp_path / "snaps"
    subprocess.run(
        [
            sys.executable, "-m", "repro.cli", "collect",
            "--config", str(conf), "--ticks", "40", "--chunk", "5",
            "--snapshot-every", "10", "--snapshot-dir", str(snaps),
        ],
        check=True,
        capture_output=True,
        cwd="/root/repo",
        env={"PYTHONPATH": "/root/repo/src", "PATH": "/usr/bin:/bin"},
    )
    proc = subprocess.run(
        [
            sys.executable, "-m", "repro.cli", "replay",
            "--config", str(conf), "--at", "25", "--snapshot-dir", str(snaps),
        ],
        capture_output=True,
        text=True,
        cwd="/root/repo",
        env={"PYTHONPATH": "/root/repo/src", "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 0, proc.stderr
    assert "restored snapshot at tick 20" in proc.stdout
    assert "tick 25" in proc.stdout
