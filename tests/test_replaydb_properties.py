"""Property-based invariants for the replay layer (hypothesis).

The scenario subsystem leans on the replay path being trustworthy
under *arbitrary* interleavings — dropped ticks, ring wrap-around,
block-strided fan-in, priority feedback — not just the happy paths the
example-based tests walk.  These properties are model-based: a plain
dict model shadows every operation and the cache/sampler must agree
with it exactly.

The hypothesis runs are derandomized so the tier-1 suite stays
deterministic; bump ``max_examples`` locally when hunting.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.replaydb.cache import ReplayCache
from repro.replaydb.db import ReplayDB
from repro.replaydb.prioritized import PrioritizedSampler
from repro.replaydb.records import TickRecord
from repro.replaydb.sampler import SamplerStarvedError
from repro.replaydb.spans import StridedMinibatchSampler, TickSpans

SETTINGS = dict(max_examples=40, deadline=None, derandomize=True)

CAPACITY = 8


def _record(tick: int, value: float = None, action: int = -1) -> TickRecord:
    value = float(tick) if value is None else value
    return TickRecord(
        tick=tick,
        frame=np.array([value, -value]),
        action=action,
        reward=value / 10.0,
    )


class TestReplayCacheProperties:
    """Capacity/eviction invariants under arbitrary put sequences."""

    @given(ticks=st.lists(st.integers(0, 4 * CAPACITY), max_size=40))
    @settings(**SETTINGS)
    def test_cache_matches_dict_model(self, ticks):
        cache = ReplayCache(2, capacity=CAPACITY)
        model = {}  # tick -> value of the *last* accepted put
        max_tick = None
        for tick in ticks:
            value = float(tick) + 0.5  # distinguish rewrites from zeros
            too_old = max_tick is not None and tick <= max_tick - CAPACITY
            if too_old:
                with pytest.raises(ValueError):
                    cache.put(_record(tick, value))
                continue
            cache.put(_record(tick, value))
            model[tick] = value
            max_tick = tick if max_tick is None else max(max_tick, tick)
            # Window invariants hold after every single operation.
            assert cache.max_tick == max_tick
            horizon = max_tick - CAPACITY
            live = {t for t in model if t > horizon}
            # min_tick is a lower bound on live ticks: the min ever
            # stored, clamped to the ring horizon as it advances.
            assert horizon < cache.min_tick <= min(live)
            for t in range(max(0, max_tick - 2 * CAPACITY), max_tick + 2):
                assert cache.has(t) == (t in live), f"tick {t}"
            for t in live:
                rec = cache.get(t)
                assert rec.frame[0] == model[t]
                assert rec.tick == t

    @given(
        ticks=st.lists(
            st.integers(0, 3 * CAPACITY), min_size=1, max_size=30, unique=True
        )
    )
    @settings(**SETTINGS)
    def test_len_never_exceeds_capacity(self, ticks):
        cache = ReplayCache(2, capacity=CAPACITY)
        accepted = 0
        for tick in sorted(ticks):
            cache.put(_record(tick))
            accepted += 1
            assert len(cache) <= CAPACITY
            assert len(cache) <= accepted

    def test_wrapped_ring_never_serves_stale_slots(self):
        """Regression: a dropped tick whose slot still holds the record
        from one capacity earlier must read as missing, not stale."""
        cache = ReplayCache(2, capacity=4)
        cache.put(_record(0, 99.0, action=1))
        cache.put(_record(7))
        assert not cache.has(4)  # never stored; slot 0 holds tick 0
        with pytest.raises(KeyError):
            cache.get(4)
        with pytest.raises(KeyError):
            cache.set_action(4, 2)
        assert cache.has(7) and cache.get(7).frame[0] == 7.0


class TestReplayDBProperties:
    """The SQLite façade and its cache stay consistent."""

    @given(
        ops=st.lists(
            st.tuples(
                st.integers(0, 2 * CAPACITY),  # tick
                st.sampled_from(["obs", "action", "reward"]),
            ),
            max_size=30,
        )
    )
    @settings(**SETTINGS)
    def test_db_and_cache_agree(self, ops):
        db = ReplayDB(2, cache_capacity=CAPACITY)
        try:
            stored = {}  # tick -> (value, action, reward)
            max_tick = None
            for tick, kind in ops:
                if kind == "obs":
                    if max_tick is not None and tick <= max_tick - CAPACITY:
                        continue  # cache would reject; skip
                    value = float(tick) + 0.25
                    db.put_observation(
                        tick, np.array([value, 0.0]), reward=value
                    )
                    stored[tick] = [value, -1, value]
                    max_tick = (
                        tick if max_tick is None else max(max_tick, tick)
                    )
                elif kind == "action":
                    db.put_action(tick, 3)
                    if tick in stored and db.cache.has(tick):
                        stored[tick][1] = 3
                elif kind == "reward":
                    if tick in stored:
                        db.set_reward(tick, -1.5)
                        if db.cache.has(tick):
                            stored[tick][2] = -1.5
            assert db.record_count() == len(stored)
            for tick, (value, action, reward) in stored.items():
                if db.cache.has(tick):
                    rec = db.cache.get(tick)
                    assert rec.frame[0] == value
                    assert rec.action == action
                    assert rec.reward == reward
        finally:
            db.close()


def _dense_cache(n_ticks: int, frame_width: int = 2) -> ReplayCache:
    cache = ReplayCache(frame_width, capacity=max(64, n_ticks + 1))
    for t in range(n_ticks):
        cache.put(
            TickRecord(
                tick=t,
                frame=np.full(frame_width, float(t)),
                action=t % 3,
                reward=float(t),
            )
        )
    return cache


class TestPrioritizedProperties:
    """Priority weights under arbitrary insert/update interleavings."""

    @given(
        n_ticks=st.integers(6, 20),
        updates=st.lists(
            st.tuples(
                st.integers(0, 19), st.floats(0.0, 100.0, allow_nan=False)
            ),
            max_size=15,
        ),
        alpha=st.floats(0.0, 1.0),
    )
    @settings(**SETTINGS)
    def test_probabilities_and_weights_normalized(
        self, n_ticks, updates, alpha
    ):
        sampler = PrioritizedSampler(
            _dense_cache(n_ticks), obs_ticks=2, alpha=alpha, seed=0
        )
        first, last = sampler.eligible_range()
        for tick, err in updates:
            sampler.update_priorities(
                np.array([tick % n_ticks]), np.array([err])
            )
        # Every eligible tick's effective priority is positive and the
        # induced distribution is a distribution.
        prios = np.array(
            [sampler.priority_of(t) for t in range(first, last + 1)]
        )
        assert (prios >= sampler.epsilon_priority).all() or alpha == 0.0
        assert (prios > 0).all()
        probs = prios**sampler.alpha
        probs /= probs.sum()
        assert probs.sum() == pytest.approx(1.0)
        batch = sampler.sample_minibatch(4)
        # IS weights: normalised to max 1, all in (0, 1].
        assert batch.weights.max() == pytest.approx(1.0)
        assert (batch.weights > 0).all()
        assert (batch.weights <= 1.0 + 1e-12).all()
        # Sampled ticks are eligible ones.
        assert ((batch.ticks >= first) & (batch.ticks <= last)).all()

    @given(n_ticks=st.integers(6, 16))
    @settings(**SETTINGS)
    def test_alpha_zero_is_uniform(self, n_ticks):
        sampler = PrioritizedSampler(
            _dense_cache(n_ticks), obs_ticks=2, alpha=0.0, seed=0
        )
        sampler.update_priorities(np.array([3]), np.array([1e6]))
        first, last = sampler.eligible_range()
        prios = np.array(
            [sampler.priority_of(t) for t in range(first, last + 1)]
        )
        probs = prios**0.0
        probs /= probs.sum()
        assert np.allclose(probs, 1.0 / len(probs))


class TestStridedSamplerProperties:
    """Block-aware sampling over arbitrary per-env progress states."""

    OBS_TICKS = 2

    def _sampler(self, stride, synced):
        cache = ReplayCache(2, capacity=stride * len(synced))
        for i, top in enumerate(synced):
            for t in range(max(0, top) + 1):
                cache.put(
                    TickRecord(
                        tick=i * stride + t,
                        frame=np.array([float(i), float(t)]),
                        action=t % 3,
                        reward=1.0,
                    )
                )
        return StridedMinibatchSampler(
            cache,
            TickSpans.from_tops(stride, synced),
            obs_ticks=self.OBS_TICKS,
            seed=0,
        )

    @given(
        stride=st.integers(8, 32),
        synced=st.lists(st.integers(-1, 7), min_size=1, max_size=5),
    )
    @settings(**SETTINGS)
    def test_spans_stay_inside_their_blocks(self, stride, synced):
        sampler = self._sampler(stride, synced)
        spans = sampler.spans.candidate_spans(sampler.obs_ticks)
        for first, last in spans:
            block = first // stride
            assert first <= last
            assert block == last // stride  # never crosses a boundary
            assert first % stride >= self.OBS_TICKS - 1
            assert last % stride <= synced[block] - 1
        # Exactly the environments with a full window contribute a span.
        expected = [
            i
            for i, top in enumerate(synced)
            if top - 1 >= self.OBS_TICKS - 1
        ]
        assert [f // stride for f, _ in spans] == expected

    @given(
        stride=st.integers(8, 16),
        synced=st.lists(st.integers(3, 7), min_size=1, max_size=4),
    )
    @settings(**SETTINGS)
    def test_sampled_transitions_come_from_valid_spans(self, stride, synced):
        sampler = self._sampler(stride, synced)
        batch = sampler.sample_minibatch(8)
        assert batch.s_t.shape == (8, self.OBS_TICKS * 2)
        # Block identity rides in the frame's first column: every
        # stacked frame in every observation belongs to one env.
        blocks = batch.s_t[:, 0::2]
        assert (blocks == blocks[:, :1]).all()

    def test_starved_when_no_block_has_a_window(self):
        sampler = self._sampler(8, [0, 1])
        with pytest.raises(SamplerStarvedError):
            sampler.sample_minibatch(2)
