"""Tests for prioritized replay and monitoring-only/offline training."""

import numpy as np
import pytest

from repro.cluster import ClusterConfig
from repro.core import CapesSession
from repro.env import EnvConfig, StorageTuningEnv
from repro.replaydb import PrioritizedSampler, ReplayDB
from repro.replaydb.sampler import SamplerStarvedError
from repro.rl import Hyperparameters
from repro.workloads import RandomReadWrite

FAST_HP = Hyperparameters(
    hidden_layer_size=8, sampling_ticks_per_observation=3, exploration_ticks=20
)


def filled_db(n_ticks=60, fw=3):
    db = ReplayDB(fw)
    rng = np.random.default_rng(0)
    for t in range(n_ticks):
        db.put_observation(t, rng.normal(size=fw), reward=float(t))
        db.put_action(t, 1)
    return db


def make_session():
    env = StorageTuningEnv(
        EnvConfig(
            cluster=ClusterConfig(n_servers=2, n_clients=2),
            workload_factory=lambda c, s: RandomReadWrite(
                c, read_fraction=0.1, instances_per_client=2, seed=s
            ),
            hp=FAST_HP,
            seed=0,
        )
    )
    return CapesSession(env, seed=0)


class TestPrioritizedSampler:
    def test_minibatch_carries_ticks_and_weights(self):
        db = filled_db()
        s = PrioritizedSampler(db.cache, obs_ticks=5, seed=0)
        mb = s.sample_minibatch(8)
        assert len(mb) == 8
        assert mb.ticks.shape == (8,)
        assert mb.weights.shape == (8,)
        assert (mb.weights > 0).all() and mb.weights.max() == pytest.approx(1.0)

    def test_high_priority_ticks_sampled_more(self):
        db = filled_db(n_ticks=60)
        s = PrioritizedSampler(db.cache, obs_ticks=5, alpha=1.0, seed=0)
        hot = 30
        s.update_priorities(np.array([hot]), np.array([100.0]))
        # everything else keeps default priority 1 -> hot dominates draws
        counts = 0
        draws = 0
        for _ in range(40):
            mb = s.sample_minibatch(8)
            counts += int((mb.ticks == hot).sum())
            draws += 8
        assert counts / draws > 0.3

    def test_alpha_zero_is_uniformish(self):
        db = filled_db(n_ticks=40)
        s = PrioritizedSampler(db.cache, obs_ticks=5, alpha=0.0, seed=0)
        s.update_priorities(np.array([20]), np.array([1000.0]))
        seen = []
        for _ in range(40):
            seen.extend(s.sample_minibatch(8).ticks.tolist())
        frac_hot = seen.count(20) / len(seen)
        first, last = s.eligible_range()
        assert frac_hot < 3.0 / (last - first + 1)

    def test_update_priorities_validates_shapes(self):
        db = filled_db()
        s = PrioritizedSampler(db.cache, obs_ticks=5)
        with pytest.raises(ValueError):
            s.update_priorities(np.array([1, 2]), np.array([1.0]))

    def test_empty_db_starves(self):
        db = ReplayDB(3)
        s = PrioritizedSampler(db.cache, obs_ticks=5)
        with pytest.raises(SamplerStarvedError):
            s.sample_minibatch(4)

    def test_max_at_insertion_semantics(self):
        db = filled_db(n_ticks=60)
        s = PrioritizedSampler(db.cache, obs_ticks=5)
        s.update_priorities(np.array([10]), np.array([50.0]))
        # already-eligible ticks keep the priority they were frozen at...
        assert s.priority_of(11) == pytest.approx(1.0)
        assert s.priority_of(10) == pytest.approx(50.0 + s.epsilon_priority)
        # ...but ticks that become eligible later inherit the raised max
        rng = np.random.default_rng(1)
        for t in (60, 61):
            db.put_observation(t, rng.normal(size=3), reward=0.0)
            db.put_action(t, 1)
        assert s.priority_of(60) == pytest.approx(50.0 + s.epsilon_priority)

    def test_hyperparameter_validation(self):
        db = filled_db()
        with pytest.raises(ValueError):
            PrioritizedSampler(db.cache, alpha=1.5)
        with pytest.raises(ValueError):
            PrioritizedSampler(db.cache, epsilon_priority=0.0)


class TestMonitoringOnlyAndOffline:
    def test_collect_records_null_actions(self):
        session = make_session()
        rewards = session.collect(10)
        assert rewards.shape == (10,)
        cache = session.env.db.cache
        ticks = [
            t
            for t in range(cache.min_tick, cache.max_tick)
            if cache.has(t) and cache.get(t).action >= 0
        ]
        assert ticks, "collect() must record actions"
        assert all(cache.get(t).action == 0 for t in ticks)
        # the DNN was never trained
        assert session.agent.train_steps == 0

    def test_train_offline_uses_collected_data(self):
        session = make_session()
        session.collect(20)
        losses = session.train_offline(10)
        assert len(losses) == 10
        assert np.isfinite(losses).all()
        # target system did not advance during offline training
        tick_before = session.env.tick
        session.train_offline(5)
        assert session.env.tick == tick_before

    def test_offline_then_online_workflow(self):
        """Collect → offline train → deploy greedy: the §3.3 life cycle."""
        session = make_session()
        session.collect(20)
        session.train_offline(20)
        result = session.evaluate(5)
        assert result.n_ticks == 5

    def test_validation(self):
        session = make_session()
        with pytest.raises(ValueError):
            session.collect(0)
        with pytest.raises(ValueError):
            session.train_offline(0)
