"""Sharded collection: remote shards == forked workers, byte for byte.

The distribution contract of the ``shards`` backend: a fleet split
across shard hosts over TCP produces **byte-identical** traces,
replay-DB contents and frontiers to the same fleet as forked local
workers — and to any other shard layout of the same total (placement
independence), because per-env seeds derive from the global index
alone.  On top of that, the failure modes the refactor exists for: a
worker dying mid-chunk surfaces as :class:`WorkerCrashError` naming
the env (and shard), never a bare ``EOFError``; ``close()`` is
idempotent and always reaps; op-log snapshots restore across backends
and shard layouts.

Hosts run in daemon threads (real sockets, one process) so the full
framed/codec path is exercised without subprocess scaffolding; the CLI
``shard-host`` process path is covered by the shard-scaling benchmark.
"""

import functools
import hashlib
import os
import signal
import threading
import time
from contextlib import contextmanager
from dataclasses import replace

import numpy as np
import pytest

from repro.cluster import ClusterConfig
from repro.env import (
    EnvConfig,
    ShardHost,
    StorageTuningEnv,
    VectorEnv,
    WorkerCrashError,
    make_env,
)
from repro.env.shard import SHARD_PROTO
from repro.replaydb.db import CACHE_ONLY, ReplayDB
from repro.replaydb.spans import TickSpans
from repro.rl import Hyperparameters
from repro.snapshot.layers import capture_replay
from repro.transport import (
    MSG_CMD,
    MSG_ERR,
    SocketTransport,
    decode_error,
    encode_command,
)
from repro.workloads import RandomReadWrite

SEED = 123
STRIDE = 256

HP = Hyperparameters(
    hidden_layer_size=8,
    exploration_ticks=20,
    sampling_ticks_per_observation=3,
)


def tiny_workload(cluster, seed):
    return RandomReadWrite(
        cluster, read_fraction=0.1, seed=seed, instances_per_client=2
    )


def tiny_config(seed: int = SEED) -> EnvConfig:
    return EnvConfig(
        cluster=ClusterConfig(n_servers=2, n_clients=2),
        workload_factory=tiny_workload,
        hp=HP,
        seed=seed,
    )


def plain_builder(seed: int) -> StorageTuningEnv:
    """What a ``repro shard-host --config`` process builds per env."""
    return StorageTuningEnv(
        replace(tiny_config(), seed=seed, db_path=CACHE_ONLY)
    )


SCENARIO_KW = dict(first_tick=4, period=5, n_bursts=2, duration=2)


def scenario_builder(seed: int):
    """A scenario timeline rides the shard exactly like ``--env``."""
    return make_env(
        "sim-lustre-bursty",
        seed=seed,
        scenario_kwargs=SCENARIO_KW,
        cluster=ClusterConfig(n_servers=2, n_clients=2),
        hp=HP,
    )


@contextmanager
def running_shards(builder, sizes):
    """Shard hosts in daemon threads, one connection each; yields
    their addresses in fleet order."""
    hosts = [ShardHost(builder, k) for k in sizes]
    threads = [
        threading.Thread(
            target=h.serve_forever, kwargs={"once": True}, daemon=True
        )
        for h in hosts
    ]
    for t in threads:
        t.start()
    try:
        yield [h.address for h in hosts]
    finally:
        for t in threads:
            t.join(timeout=10)
        for h in hosts:
            h.close()


def rollout_digest(venv) -> str:
    """blake2b over the full observable surface of a short session:
    reset obs, chunked-collect rewards, stepped obs/rewards, every
    fan-in DB row and the sampling frontier."""
    h = hashlib.blake2b(digest_size=16)
    try:
        obs = venv.reset()
        h.update(np.ascontiguousarray(obs).tobytes())
        rewards = venv.collect(10, chunk=4)
        h.update(np.ascontiguousarray(rewards).tobytes())
        for t in range(2):
            actions = [(t + i) % venv.n_actions for i in range(venv.n_envs)]
            obs, rew, _infos = venv.step(actions)
            h.update(np.ascontiguousarray(obs).tobytes())
            h.update(np.ascontiguousarray(rew).tobytes())
        for i, top in enumerate(venv.spans.tops()):
            h.update(np.int64(top).tobytes())
            if top < 0:
                continue
            packed = venv.shared_db.cache.records_between(
                i * venv.tick_stride, i * venv.tick_stride + top
            )
            for name in ("ticks", "frames", "actions", "rewards"):
                h.update(getattr(packed, name).tobytes())
    finally:
        venv.close()
    return h.hexdigest()


# --------------------------------------------------------------------------
# Golden equivalence: shards == fork == any shard layout
# --------------------------------------------------------------------------


def test_two_shard_socket_collection_matches_fork():
    """2x2 over TCP is byte-identical to 4 forked workers."""
    with running_shards(plain_builder, [2, 2]) as addrs:
        venv = VectorEnv.from_config(
            tiny_config(), 4, backend="shards", shards=addrs,
            tick_stride=STRIDE,
        )
        assert venv.shard_sizes == [2, 2]
        shard_digest = rollout_digest(venv)
    fork_digest = rollout_digest(
        VectorEnv.from_config(
            tiny_config(), 4, backend="fork", tick_stride=STRIDE
        )
    )
    assert shard_digest == fork_digest, (
        "sharded socket collection drifted from the fork backend: the "
        "transports are no longer byte-transparent"
    )


def test_shard_placement_independence():
    """1x4 and 2x2 layouts of the same fleet are byte-identical: seeds
    derive from the global env index, never from placement."""
    with running_shards(plain_builder, [4]) as addrs:
        one = rollout_digest(
            VectorEnv.from_config(
                tiny_config(), 4, backend="shards", shards=addrs,
                tick_stride=STRIDE,
            )
        )
    with running_shards(plain_builder, [2, 2]) as addrs:
        two = rollout_digest(
            VectorEnv.from_config(
                tiny_config(), 4, backend="shards", shards=addrs,
                tick_stride=STRIDE,
            )
        )
    assert one == two


def test_scenario_timeline_matches_fork_across_shards():
    """A scenario's event timeline fires identically on remote shards."""
    seeds = None
    from repro.env import vector_seeds

    seeds = vector_seeds(SEED, 4)
    factories = [
        functools.partial(scenario_builder, s) for s in seeds
    ]
    fork_digest = rollout_digest(
        VectorEnv(factories, backend="fork", tick_stride=STRIDE)
    )
    with running_shards(scenario_builder, [2, 2]) as addrs:
        shard_digest = rollout_digest(
            VectorEnv(
                None,
                backend="shards",
                shards=addrs,
                base_seed=SEED,
                tick_stride=STRIDE,
            )
        )
    assert shard_digest == fork_digest


def test_from_config_rejects_n_envs_mismatch():
    with running_shards(plain_builder, [2, 2]) as addrs:
        with pytest.raises(ValueError, match="requested n_envs=3"):
            VectorEnv.from_config(
                tiny_config(), 3, backend="shards", shards=addrs,
                tick_stride=STRIDE,
            )


def test_hello_proto_mismatch_is_refused():
    """A master speaking the wrong protocol version is turned away."""
    with running_shards(plain_builder, [1]) as addrs:
        t = SocketTransport.connect(addrs[0], timeout=5.0)
        try:
            t.send(
                MSG_CMD,
                encode_command("hello", 0, {"proto": SHARD_PROTO + 99}),
            )
            msg_type, payload = t.recv()
            assert msg_type == MSG_ERR
            _env, text, exc = decode_error(payload)
            assert "proto" in text
        finally:
            t.close()


# --------------------------------------------------------------------------
# Failure modes: crashes are named, close always reaps
# --------------------------------------------------------------------------


def test_fork_worker_killed_mid_run_chunk_is_a_named_crash():
    """Regression: a worker dying mid-chunk used to surface as a bare
    ``EOFError`` from the pipe (or hang).  It must be a
    :class:`WorkerCrashError` naming the env and command, promptly, and
    ``close()`` must still reap every process."""
    venv = VectorEnv.from_config(
        tiny_config(), 2, backend="fork", tick_stride=1024
    )
    procs = [w._proc for w in venv._workers]
    venv.reset()
    killer = threading.Timer(
        0.4, os.kill, args=(procs[0].pid, signal.SIGKILL)
    )
    killer.start()
    start = time.monotonic()
    try:
        with pytest.raises(WorkerCrashError) as excinfo:
            # ~80 ticks is a multi-second chunk for this sim: the kill
            # lands while the worker is deep inside run_chunk.
            venv.collect(80, chunk=80)
    finally:
        killer.cancel()
    assert time.monotonic() - start < 30, "crash surfaced, but not promptly"
    assert excinfo.value.env_index == 0
    assert "run_chunk" in str(excinfo.value)
    assert "EOFError" not in type(excinfo.value).__name__
    venv.close()
    venv.close()  # idempotent
    assert all(not p.is_alive() for p in procs), "close() left orphans"


def test_dead_fork_worker_surfaces_at_submit_too():
    venv = VectorEnv.from_config(
        tiny_config(), 2, backend="fork", tick_stride=STRIDE
    )
    venv.reset()
    os.kill(venv._workers[1]._proc.pid, signal.SIGKILL)
    venv._workers[1]._proc.join(timeout=10)
    with pytest.raises(WorkerCrashError) as excinfo:
        for _ in range(20):  # the pipe may buffer one post-mortem write
            venv.step([0, 0])
            time.sleep(0.05)
    assert excinfo.value.env_index == 1
    venv.close()
    venv.close()
    assert all(not w._proc.is_alive() for w in venv._workers)


def test_lost_shard_names_the_shard_and_env():
    with running_shards(plain_builder, [1, 1]) as addrs:
        venv = VectorEnv.from_config(
            tiny_config(), 2, backend="shards", shards=addrs,
            tick_stride=STRIDE,
        )
        venv.reset()
        venv._channels[1].close()  # the shard link drops
        with pytest.raises(WorkerCrashError) as excinfo:
            venv.step([0, 0])
        assert excinfo.value.shard == addrs[1]
        assert excinfo.value.env_index == 1
        venv.close()
        venv.close()


def test_shard_env_error_crosses_verbatim_and_shard_survives():
    """One bad call is one exception, not a dead shard: the original
    exception type crosses back and the session keeps serving."""
    with running_shards(plain_builder, [2]) as addrs:
        venv = VectorEnv.from_config(
            tiny_config(), 2, backend="shards", shards=addrs,
            tick_stride=STRIDE,
        )
        try:
            venv.reset()
            with pytest.raises(AttributeError):
                venv.env_method(0, "definitely_not_a_method")
            obs, rew, _infos = venv.step([0, 1])  # still alive
            assert obs.shape == (2, venv.obs_dim)
        finally:
            venv.close()


# --------------------------------------------------------------------------
# Snapshots: sharded sessions resume on any backend, any layout
# --------------------------------------------------------------------------


def test_sharded_snapshot_restores_across_backends_and_layouts():
    """An op-log snapshot taken on a 2x2 sharded fleet restores onto a
    4-env fork fleet, a serial fleet and a 1x4 shard layout — and all
    of them continue byte-identically."""
    cont_actions = [1, 2, 0, 1]
    with running_shards(plain_builder, [2, 2]) as addrs:
        venv = VectorEnv.from_config(
            tiny_config(), 4, backend="shards", shards=addrs,
            tick_stride=STRIDE,
        )
        try:
            venv.reset()
            venv.collect(6, chunk=3)
            venv.step([0, 1, 2, 3])
            snap = venv.snapshot()
            obs, rew, _ = venv.step(cont_actions)
            want_obs, want_rew = obs.copy(), rew.copy()
            want_tops = venv.spans.tops()
        finally:
            venv.close()

    shards_meta = snap["meta"]["shards"]
    assert shards_meta["addresses"] == addrs
    assert shards_meta["sizes"] == [2, 2]
    assert [a["n_envs"] for a in shards_meta["acks"]] == [2, 2]

    def continues_identically(restored):
        try:
            restored.restore(snap)
            obs, rew, _ = restored.step(cont_actions)
            assert np.array_equal(obs, want_obs)
            assert np.array_equal(rew, want_rew)
            assert restored.spans.tops() == want_tops
        finally:
            restored.close()

    continues_identically(
        VectorEnv.from_config(
            tiny_config(), 4, backend="fork", tick_stride=STRIDE
        )
    )
    continues_identically(
        VectorEnv.from_config(
            tiny_config(), 4, backend="serial", tick_stride=STRIDE
        )
    )
    with running_shards(plain_builder, [4]) as addrs2:
        continues_identically(
            VectorEnv.from_config(
                tiny_config(), 4, backend="shards", shards=addrs2,
                tick_stride=STRIDE,
            )
        )


def test_fork_snapshot_restores_onto_shards():
    """The reverse direction: a local fork session migrates onto
    remote shards mid-run."""
    venv = VectorEnv.from_config(
        tiny_config(), 2, backend="fork", tick_stride=STRIDE
    )
    try:
        venv.reset()
        venv.collect(5)
        snap = venv.snapshot()
        obs, rew, _ = venv.step([1, 0])
        want_obs, want_rew = obs.copy(), rew.copy()
    finally:
        venv.close()
    with running_shards(plain_builder, [1, 1]) as addrs:
        restored = VectorEnv.from_config(
            tiny_config(), 2, backend="shards", shards=addrs,
            tick_stride=STRIDE,
        )
        try:
            restored.restore(snap)
            obs, rew, _ = restored.step([1, 0])
            assert np.array_equal(obs, want_obs)
            assert np.array_equal(rew, want_rew)
        finally:
            restored.close()


# --------------------------------------------------------------------------
# The frontier's shard dimension
# --------------------------------------------------------------------------


class TestShardedTickSpans:
    def test_topology_arithmetic(self):
        spans = TickSpans(5, 16, shard_sizes=[2, 3])
        assert spans.n_shards == 2
        assert spans.shard_offset(0) == 0 and spans.shard_offset(1) == 2
        assert [spans.shard_of(b) for b in range(5)] == [0, 0, 1, 1, 1]
        assert spans.global_slot(1, 2) == 4
        with pytest.raises(IndexError):
            spans.global_slot(1, 3)
        with pytest.raises(IndexError):
            spans.shard_offset(2)

    def test_shard_tops_are_per_shard_views(self):
        spans = TickSpans(4, 8, shard_sizes=[1, 3])
        spans.observe(np.array([3, 8 + 5, 3 * 8 + 1]))
        assert spans.shard_tops(0) == [3]
        assert spans.shard_tops(1) == [5, -1, 1]
        assert spans.tops() == [3, 5, -1, 1]

    def test_unsharded_is_one_shard(self):
        spans = TickSpans(3, 8)
        assert spans.n_shards == 1
        assert spans.shard_tops(0) == [-1, -1, -1]
        assert spans.shard_of(2) == 0

    def test_sizes_must_sum_to_blocks(self):
        with pytest.raises(ValueError, match="sum to"):
            TickSpans(4, 8, shard_sizes=[2, 3])
        with pytest.raises(ValueError):
            TickSpans(4, 8, shard_sizes=[4, 0])

    def test_samplers_are_oblivious_to_sharding(self):
        plain = TickSpans(4, 8)
        sharded = TickSpans(4, 8, shard_sizes=[2, 2])
        ticks = np.array([2, 8 + 4, 2 * 8 + 6, 3 * 8 + 1])
        plain.observe(ticks)
        sharded.observe(ticks)
        assert plain.candidate_spans(3) == sharded.candidate_spans(3)

    def test_snapshot_layer_records_topology(self):
        db = ReplayDB(2, path=CACHE_ONLY, cache_capacity=64)
        meta, _arrays = capture_replay(db, TickSpans(4, 8, shard_sizes=[1, 3]))
        assert meta["shard_sizes"] == [1, 3]
        meta, _arrays = capture_replay(db, TickSpans(4, 8))
        assert "shard_sizes" not in meta
        db.close()

    def test_from_tops_carries_shard_sizes(self):
        spans = TickSpans.from_tops(8, [1, 2, 3, 4], shard_sizes=[2, 2])
        assert spans.shard_tops(1) == [3, 4]
