"""Tests for the Interface Daemon and the tuning environment."""

import numpy as np
import pytest

from repro.cluster import ClusterConfig
from repro.core import ActionSpace
from repro.core.actions import lustre_parameters
from repro.env import EnvConfig, StorageTuningEnv
from repro.rl import Hyperparameters
from repro.workloads import RandomReadWrite

FAST_HP = Hyperparameters(
    hidden_layer_size=16,
    sampling_ticks_per_observation=4,
    exploration_ticks=50,
)


def make_env(drop=0.0, n_servers=2, n_clients=2, read_fraction=0.1, seed=0, perturb=0):
    return StorageTuningEnv(
        EnvConfig(
            cluster=ClusterConfig(n_servers=n_servers, n_clients=n_clients),
            workload_factory=lambda c, s: RandomReadWrite(
                c, read_fraction=read_fraction, instances_per_client=2, seed=s
            ),
            hp=FAST_HP,
            drop_probability=drop,
            seed=seed,
            perturb_seed=perturb,
        )
    )


class TestEnvLifecycle:
    def test_requires_workload_factory(self):
        with pytest.raises(ValueError):
            StorageTuningEnv(EnvConfig())

    def test_step_before_reset_rejected(self):
        env = make_env()
        with pytest.raises(RuntimeError):
            env.step(0)

    def test_reset_returns_full_observation(self):
        env = make_env()
        obs = env.reset()
        assert obs.shape == (env.obs_dim,)
        assert np.isfinite(obs).all()
        assert env.obs_dim == 4 * env.frame_dim

    def test_step_advances_one_tick(self):
        env = make_env()
        env.reset()
        t0 = env.sim.now
        _obs, _r, info = env.step(0)
        assert env.sim.now == t0 + 1.0
        assert info["tick"] == env.tick

    def test_action_changes_parameter(self):
        env = make_env()
        env.reset()
        # action 2 = decrease max_rpcs_in_flight by 1
        _obs, _r, info = env.step(2)
        assert info["params"]["max_rpcs_in_flight"] == 7.0
        assert not info["effect"].is_null

    def test_reward_is_throughput_scaled(self):
        env = make_env()
        env.reset()
        rewards = [env.step(0)[1] for _ in range(10)]
        assert all(r >= 0 for r in rewards)
        assert sum(rewards) > 0  # the workload moves bytes

    def test_run_ticks_returns_rewards(self):
        env = make_env()
        env.reset()
        r = env.run_ticks(5)
        assert r.shape == (5,)

    def test_set_params_and_readback(self):
        env = make_env()
        env.reset()
        env.set_params({"max_rpcs_in_flight": 4, "io_rate_limit": 500.0})
        assert env.current_params() == {
            "max_rpcs_in_flight": 4.0,
            "io_rate_limit": 500.0,
        }

    def test_set_unknown_param_rejected(self):
        env = make_env()
        env.reset()
        with pytest.raises(KeyError):
            env.set_params({"bogus": 1})

    def test_reset_rebuilds_fresh_system(self):
        env = make_env()
        env.reset()
        env.step(2)
        assert env.current_params()["max_rpcs_in_flight"] == 7.0
        env.reset()
        assert env.current_params()["max_rpcs_in_flight"] == 8.0
        assert env.tick == env.hp.sampling_ticks_per_observation

    def test_determinism_same_seed(self):
        def trace(seed):
            env = make_env(seed=seed)
            env.reset()
            return [env.step(a % 5)[1] for a in range(8)]

        assert trace(3) == trace(3)

    def test_perturbed_env_differs_but_same_interface(self):
        a = make_env(seed=1, perturb=0)
        b = a.perturbed(7)
        ra = a.reset()
        rb = b.reset()
        assert ra.shape == rb.shape
        assert b.config.perturb_seed == 7


class TestDaemonViaEnv:
    def test_observations_flow_into_replay_db(self):
        env = make_env()
        env.reset()
        for _ in range(6):
            env.step(0)
        assert env.db.record_count() >= 6
        assert env.daemon.ticks_stored == env.tick

    def test_actions_recorded(self):
        env = make_env()
        env.reset()
        start_tick = env.tick
        env.step(1)
        rec = env.db.cache.get(start_tick)
        assert rec.action == 1

    def test_rewards_attached_to_records(self):
        env = make_env()
        env.reset()
        env.step(0)
        rec = env.db.cache.get(env.tick)
        assert rec.reward == env.reward_source.last_value

    def test_drops_create_missing_ticks(self):
        env = make_env(drop=0.4, seed=2)
        env.reset()
        for _ in range(30):
            env.step(0)
        assert env.daemon.ticks_incomplete > 0
        assert env.daemon.ticks_stored < env.tick

    def test_sampler_works_despite_drops(self):
        env = make_env(drop=0.1, seed=2)
        env.reset()
        for _ in range(40):
            env.step(0)
        sampler = env.make_sampler(seed=0)
        mb = sampler.sample_minibatch(8)
        assert len(mb) == 8

    def test_checker_veto_records_null(self):
        env = make_env()
        env.checker.add_minimum("max_rpcs_in_flight", 8)
        env.reset()
        start_tick = env.tick
        _o, _r, info = env.step(2)  # decrease below the floor -> veto
        assert info["effect"].is_null
        assert env.db.cache.get(start_tick).action == ActionSpace.NULL_ACTION
        assert env.current_params()["max_rpcs_in_flight"] == 8.0

    def test_wire_messages_really_flow(self):
        env = make_env()
        env.reset()
        env.step(0)
        stats = env.monitors[0].wire_stats
        assert stats.messages == env.tick
        assert stats.compressed_bytes > 0


class TestObservationContent:
    def test_observation_reflects_window_changes(self):
        """The window PI inside the newest frame must track the action."""
        env = make_env()
        obs = env.reset()
        frames = obs.reshape(env.hp.sampling_ticks_per_observation, -1)
        # first indicator of first OSC of first client = window / 64
        assert frames[-1][0] == pytest.approx(8 / 16.0)
        obs, _r, _i = env.step(2)  # window 8 -> 7
        frames = obs.reshape(env.hp.sampling_ticks_per_observation, -1)
        assert frames[-1][0] == pytest.approx(7 / 16.0)
