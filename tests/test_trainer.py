"""The decoupled trainer subsystem (repro.train).

Covers the PR's contract surface:

- the ``inline`` backend (and ``serial`` at ``interleave_ticks=1``) is
  byte-identical to the historical train-in-the-tick-loop session;
- the ``serial`` backend is deterministic at any interleave and spends
  the same step budget;
- the ``process`` backend spends the same budget, bounds policy
  staleness by ``sync_every``, validates every mirrored record batch
  (torn-read guard), and survives checkpoint loads without a stale
  broadcast overwriting freshly loaded weights;
- concurrent replay access: sampling interleaved with ``put_many``
  chunk landings is deterministic and never serves torn rows.
"""

import hashlib

import numpy as np
import pytest

from repro.cluster import ClusterConfig
from repro.core import CapesSession
from repro.env import EnvConfig, StorageTuningEnv, VectorEnv
from repro.exp import ExperimentSpec
from repro.replaydb.cache import ReplayCache
from repro.replaydb.records import PackedRecords
from repro.replaydb.spans import StridedMinibatchSampler, TickSpans
from repro.rl import DQNAgent, Hyperparameters
from repro.train import TrainerConfig, TrainerLoop, train_collect
from repro.workloads import RandomReadWrite

FAST_HP = Hyperparameters(
    hidden_layer_size=16,
    sampling_ticks_per_observation=3,
    exploration_ticks=30,
)


def fast_env_config(seed=0):
    return EnvConfig(
        cluster=ClusterConfig(n_servers=2, n_clients=2),
        workload_factory=lambda c, s: RandomReadWrite(
            c, read_fraction=0.1, instances_per_client=2, seed=s
        ),
        hp=FAST_HP,
        seed=seed,
    )


def weights_digest(agent) -> str:
    h = hashlib.blake2b(digest_size=16)
    for w in agent.online.net.get_weights():
        h.update(w.tobytes())
    return h.hexdigest()


def train_digest(session, result) -> str:
    h = hashlib.blake2b(digest_size=16)
    h.update(result.rewards.tobytes())
    h.update(result.losses.tobytes())
    h.update(result.epsilon_trace.tobytes())
    h.update(weights_digest(session.agent).encode())
    return h.hexdigest()


def run_session(n_ticks=25, **session_kwargs):
    session = CapesSession(
        StorageTuningEnv(fast_env_config()), seed=0, **session_kwargs
    )
    try:
        result = session.train(n_ticks)
        return train_digest(session, result), result, session
    finally:
        session.shutdown_trainer()


class TestTrainerConfig:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            TrainerConfig(backend="threads")

    def test_negative_ratio_rejected(self):
        with pytest.raises(ValueError, match="train_ratio"):
            TrainerConfig(train_ratio=-1.0)

    def test_nonpositive_knobs_rejected(self):
        with pytest.raises(ValueError):
            TrainerConfig(interleave_ticks=0)
        with pytest.raises(ValueError):
            TrainerConfig(sync_every=0)

    def test_in_process_backend_needs_sampler(self):
        agent = DQNAgent(6, 3, hp=FAST_HP, rng=0)
        with pytest.raises(ValueError, match="sampler"):
            TrainerLoop(agent, TrainerConfig(backend="serial"))

    def test_process_backend_needs_geometry(self):
        agent = DQNAgent(6, 3, hp=FAST_HP, rng=0)
        with pytest.raises(ValueError, match="frame_width"):
            TrainerLoop(agent, TrainerConfig(backend="process"))


class TestGoldenIdentity:
    """The acceptance bar: serial-interleaved == inline, byte for byte."""

    def test_serial_interleave1_byte_identical_to_inline(self):
        d_inline, r_inline, _ = run_session(train_steps_per_tick=2)
        d_serial, r_serial, _ = run_session(
            train_steps_per_tick=2, trainer_backend="serial"
        )
        assert d_inline == d_serial
        assert len(r_inline.losses) == len(r_serial.losses)

    def test_inline_fractional_ratio_quarter(self):
        """train_ratio=0.25 trains once every 4 ticks, deterministically."""
        _, result, _ = run_session(n_ticks=20, train_ratio=0.25)
        # 20 ticks x 0.25 = 5 attempted steps; early ones may starve.
        assert 0 < len(result.losses) <= 5

    def test_process_backend_equal_step_budget(self):
        d_inline, r_inline, _ = run_session(train_steps_per_tick=2)
        _, r_proc, session = run_session(
            train_steps_per_tick=2,
            trainer_backend="process",
            sync_every=8,
        )
        assert len(r_proc.losses) == len(r_inline.losses)
        assert np.isfinite(r_proc.losses).all()


class TestSerialInterleaving:
    def test_interleave4_deterministic(self):
        runs = [
            run_session(train_steps_per_tick=2, trainer_backend="serial")
            for _ in range(2)
        ]
        assert runs[0][0] == runs[1][0]

    def test_interleaved_bursts_spend_the_same_budget(self):
        session = CapesSession(
            StorageTuningEnv(fast_env_config()),
            seed=0,
            train_steps_per_tick=2,
            trainer_backend="serial",
        )
        # Coarser cadence: burst every 5 ticks instead of every tick.
        session.trainer_config = TrainerConfig(
            backend="serial", train_ratio=2.0, interleave_ticks=5
        )
        result = session.train(23)
        assert session.trainer.stats.steps_attempted == 46
        assert np.isfinite(result.losses).all()
        session.shutdown_trainer()


class TestProcessBackend:
    def test_broadcast_versioning_and_staleness_bound(self):
        session = CapesSession(
            StorageTuningEnv(fast_env_config()),
            seed=0,
            trainer_backend="process",
            train_ratio=1.0,
            sync_every=5,
        )
        session.train(23)
        stats = session.trainer.stats
        # 23 granted steps, one broadcast per 5 completed: versions
        # 1..4 broadcast, the drain barrier carries the final state.
        assert stats.weights_version == 4
        assert stats.steps_attempted == 23
        assert stats.batches_validated > 0
        session.shutdown_trainer()

    def test_worker_state_adopted_on_drain(self):
        """After drain, the master holds the worker's exact weights."""
        session = CapesSession(
            StorageTuningEnv(fast_env_config()),
            seed=0,
            trainer_backend="process",
            sync_every=4,
        )
        session.train(12)
        d_before = weights_digest(session.agent)
        # No new budget: an immediate drain must be a no-op.
        session.trainer.drain()
        assert weights_digest(session.agent) == d_before
        session.shutdown_trainer()

    def test_trainer_survives_multiple_segments(self):
        session = CapesSession(
            StorageTuningEnv(fast_env_config()),
            seed=0,
            trainer_backend="process",
            sync_every=4,
        )
        r1 = session.train(8)
        r2 = session.train(8)
        assert len(r1.losses) + len(r2.losses) > 0
        assert session.trainer.stats.steps_attempted == 16
        session.shutdown_trainer()

    def test_restart_environment_discards_trainer(self):
        session = CapesSession(
            StorageTuningEnv(fast_env_config()),
            seed=0,
            trainer_backend="process",
        )
        session.train(5)
        first = session.trainer
        session.restart_environment()
        assert session.trainer is None
        session.train(5)
        assert session.trainer is not first
        session.shutdown_trainer()


class TestLoadResetsWeightVersion:
    """Satellite regression: loading a checkpoint mid-session must start
    a new weight epoch so a stale broadcast cannot overwrite it."""

    def test_stale_epoch_broadcast_discarded(self):
        session = CapesSession(
            StorageTuningEnv(fast_env_config()),
            seed=0,
            trainer_backend="process",
            sync_every=4,
        )
        session.train(10)
        trainer = session.trainer
        backend = trainer._proc
        old_epoch = backend.epoch
        trainer.invalidate_weights()  # what load() triggers
        d_loaded = weights_digest(session.agent)
        # A broadcast forged from the *previous* epoch with a huge
        # version: exactly what an in-flight pre-load message looks
        # like.  It must be discarded wholesale.
        garbage = DQNAgent(
            session.agent.obs_dim,
            session.agent.n_actions,
            hp=FAST_HP,
            rng=99,
        ).snapshot_weights()
        applied = backend._apply(
            "weights", (old_epoch, 999, garbage, [1.0], 123, 123, 1)
        )
        assert applied == []
        assert backend.stale_discarded == 1
        assert weights_digest(session.agent) == d_loaded
        assert backend.weights_version == 0
        session.shutdown_trainer()

    def test_reload_drops_pre_load_pending_losses(self):
        """Losses of discarded pre-load SGD steps must not leak into
        the new epoch's broadcasts/drains."""
        import time

        session = CapesSession(
            StorageTuningEnv(fast_env_config()),
            seed=0,
            trainer_backend="process",
            sync_every=4,
        )
        session.ensure_started()
        trainer = session._ensure_trainer()
        backend = trainer._proc
        feed = trainer._feed
        backend.send_records(feed(), 0.0)  # warm-up records
        session.env.run_ticks(6)
        # 6 granted steps against a 4-step sync: the worker broadcasts
        # once (flushing 4 losses) and keeps steps 5-6 in ``pending``.
        backend.send_records(feed(), 6.0)
        deadline = time.monotonic() + 30.0
        while backend.broadcasts_applied < 1:
            backend.poll()
            assert time.monotonic() < deadline, "no broadcast arrived"
            time.sleep(0.01)
        time.sleep(0.5)  # let the two post-broadcast steps finish
        trainer.invalidate_weights()  # what load() triggers
        drained = trainer.drain()
        # The drain barrier reports the *new* lineage only: the
        # pre-reload pending losses were dropped with their weights.
        assert drained == []
        session.shutdown_trainer()

    def test_load_mid_session_end_to_end(self, tmp_path):
        path = tmp_path / "model.npz"
        session = CapesSession(
            StorageTuningEnv(fast_env_config()),
            seed=0,
            trainer_backend="process",
            sync_every=2,
        )
        session.train(10)
        session.save(path)
        d_saved = weights_digest(session.agent)
        session.train(10)  # worker moves on past the checkpoint
        assert weights_digest(session.agent) != d_saved
        session.load(path)
        assert weights_digest(session.agent) == d_saved
        assert session.trainer.stats.epoch == 1
        # Draining the (budget-less, reloaded) worker must not move
        # the freshly loaded weights.
        session.trainer.drain()
        assert weights_digest(session.agent) == d_saved
        # Training continues from the restored weights.
        result = session.train(6)
        assert np.isfinite(result.losses).all()
        session.shutdown_trainer()

    def test_inline_load_unaffected(self, tmp_path):
        """The fence is a no-op for in-process backends (same thread)."""
        path = tmp_path / "model.npz"
        _, _, session = run_session(n_ticks=10)
        session.save(path)
        session2 = CapesSession(StorageTuningEnv(fast_env_config()), seed=1)
        session2.train(5)
        session2.load(path)
        assert weights_digest(session2.agent) == weights_digest(
            session.agent
        )
        session2.shutdown_trainer()


class TestTrainCollect:
    """§3.3 monitoring + continuous training over a VectorEnv."""

    def _venv(self, backend="serial"):
        return VectorEnv.from_config(fast_env_config(), 2, backend=backend)

    def _run(self, trainer_backend, vector_backend="serial", **cfg):
        venv = self._venv(vector_backend)
        agent = DQNAgent(venv.obs_dim, venv.n_actions, hp=FAST_HP, rng=0)
        try:
            rewards, stats = train_collect(
                venv,
                agent,
                TrainerConfig(
                    backend=trainer_backend, train_ratio=1.0, **cfg
                ),
                20,
                chunk=5,
                sampler_seed=7,
            )
        finally:
            venv.close()
        return rewards, stats, agent

    def test_rewards_identical_across_trainer_backends(self):
        """Monitoring never consults the policy: the trainer backend is
        pure wall-clock, not semantics."""
        r_serial, s_serial, _ = self._run("serial")
        r_proc, s_proc, _ = self._run("process", sync_every=8)
        np.testing.assert_array_equal(r_serial, r_proc)
        assert s_serial.steps_attempted == s_proc.steps_attempted == 20

    def test_serial_matches_handrolled_inline_reference(self):
        """serial train_collect at chunk=1 == collect-a-tick,
        train-a-burst by hand (the inline reference)."""
        venv = self._venv()
        agent = DQNAgent(venv.obs_dim, venv.n_actions, hp=FAST_HP, rng=0)
        try:
            rewards, _ = train_collect(
                venv,
                agent,
                TrainerConfig(backend="serial", train_ratio=1.0),
                12,
                chunk=1,
                sampler_seed=7,
            )
        finally:
            venv.close()
        venv2 = self._venv()
        agent2 = DQNAgent(venv2.obs_dim, venv2.n_actions, hp=FAST_HP, rng=0)
        try:
            sampler = venv2.make_sampler(seed=7)
            venv2.reset()
            ref = np.empty((2, 12))
            for t in range(12):
                ref[:, t : t + 1] = venv2.collect(1)
                agent2.train_from_sampler(sampler)
        finally:
            venv2.close()
        np.testing.assert_array_equal(rewards, ref)
        assert weights_digest(agent) == weights_digest(agent2)

    def test_fork_fleet_process_trainer_no_torn_reads(self):
        """Both decouplings at once: fork collection workers + the fork
        trainer worker.  Every mirrored batch passes the torn-read
        validation or the worker raises and the run fails."""
        rewards, stats, _ = self._run(
            "process", vector_backend="fork", sync_every=8
        )
        assert stats.batches_validated > 0
        assert rewards.shape == (2, 20)
        assert np.isfinite(stats.losses).all()

    def test_needs_shared_db(self):
        venv = VectorEnv.from_config(
            fast_env_config(), 2, shared_db_path=None
        )
        agent = DQNAgent(venv.obs_dim, venv.n_actions, hp=FAST_HP, rng=0)
        try:
            with pytest.raises(ValueError, match="shared"):
                train_collect(venv, agent, TrainerConfig(), 5)
        finally:
            venv.close()


class TestConcurrentReplayAccess:
    """Satellite: sampling while put_many lands chunks."""

    FRAME_W = 2

    def _land_chunk(self, cache, spans, block, ticks):
        ticks = np.asarray(ticks, dtype=np.int64) + block * 64
        frames = np.stack(
            [[float(block), float(t)] for t in ticks]
        )
        cache.put_many(
            ticks,
            frames,
            np.full(len(ticks), 0.5),
            np.zeros(len(ticks), dtype=np.int64),
        )
        spans.observe(ticks)

    def _interleaved_run(self):
        cache = ReplayCache(self.FRAME_W, capacity=256)
        spans = TickSpans(2, 64)
        sampler = StridedMinibatchSampler(
            cache, spans, obs_ticks=2, seed=3
        )
        seen = []
        next_tick = [0, 0]
        for round_ in range(6):
            for block in (0, 1):
                lo = next_tick[block]
                self._land_chunk(cache, spans, block, range(lo, lo + 5))
                next_tick[block] = lo + 5
            if round_ >= 1:  # enough for one window + t+1
                batch = sampler.sample_minibatch(8)
                seen.append(batch)
        return seen

    def test_interleaved_sampling_deterministic(self):
        a = self._interleaved_run()
        b = self._interleaved_run()
        assert len(a) == len(b) == 5
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x.s_t, y.s_t)
            np.testing.assert_array_equal(x.actions, y.actions)

    def test_no_torn_rows_between_chunk_landings(self):
        """Every sampled observation must be self-consistent: the
        (block, tick) coordinates baked into each frame must line up
        with strided tick arithmetic, proving no row mixes chunks."""
        for batch in self._interleaved_run():
            s_t = batch.s_t.reshape(len(batch), 2, self.FRAME_W)
            blocks = s_t[:, :, 0]
            ticks = s_t[:, :, 1]
            # One block per observation, consecutive local ticks.
            assert (blocks == blocks[:, :1]).all()
            np.testing.assert_array_equal(
                np.diff(ticks, axis=1), np.ones((len(batch), 1))
            )

    def test_packed_records_validate(self):
        good = PackedRecords(
            ticks=np.array([3, 4, 5], dtype=np.int64),
            frames=np.zeros((3, 2)),
            actions=np.zeros(3, dtype=np.int64),
            rewards=np.zeros(3),
        )
        assert good.validate() is good
        with pytest.raises(ValueError, match="frames"):
            PackedRecords(
                ticks=np.array([3, 4], dtype=np.int64),
                frames=np.zeros((3, 2)),
                actions=np.zeros(2, dtype=np.int64),
                rewards=np.zeros(2),
            ).validate()
        with pytest.raises(ValueError, match="ascending"):
            PackedRecords(
                ticks=np.array([4, 3], dtype=np.int64),
                frames=np.zeros((2, 2)),
                actions=np.zeros(2, dtype=np.int64),
                rewards=np.zeros(2),
            ).validate()
        with pytest.raises(ValueError, match="finite"):
            PackedRecords(
                ticks=np.array([3, 4], dtype=np.int64),
                frames=np.full((2, 2), np.nan),
                actions=np.zeros(2, dtype=np.int64),
                rewards=np.zeros(2),
            ).validate()


class TestSpecAndCliPlumbing:
    def test_spec_to_dict_carries_trainer_fields(self):
        spec = ExperimentSpec(
            trainer_backend="process", train_ratio=0.5, sync_every=32
        )
        d = spec.to_dict()
        assert d["trainer_backend"] == "process"
        assert d["train_ratio"] == 0.5
        assert d["sync_every"] == 32

    def test_build_tuner_passes_trainer_fields_to_capes(self):
        spec = ExperimentSpec(
            tuner="capes", trainer_backend="serial", train_ratio=2.0
        )
        tuner = spec.build_tuner()
        assert tuner.trainer_backend == "serial"
        assert tuner.train_ratio == 2.0

    def test_build_tuner_rejects_trainer_fields_for_search_tuners(self):
        spec = ExperimentSpec(tuner="random", trainer_backend="serial")
        with pytest.raises(ValueError, match="capes"):
            spec.build_tuner()

    def test_sweep_cli_rejects_trainer_backend_for_search_tuners(self):
        from repro.cli import main

        rc = main(
            [
                "sweep",
                "--config",
                "examples/conf_lustre.py",
                "--tuners",
                "random",
                "--trainer-backend",
                "serial",
            ]
        )
        assert rc == 2

    def test_collect_cli_flags_need_train(self):
        from repro.cli import main

        for flag, value in (
            ("--checkpoint", "/tmp/never-written.npz"),
            ("--train-ratio", "2"),
            ("--sync-every", "8"),
            ("--trainer-backend", "serial"),
        ):
            rc = main(
                [
                    "collect",
                    "--config",
                    "examples/conf_lustre.py",
                    "--ticks",
                    "5",
                    flag,
                    value,
                ]
            )
            assert rc == 2, flag

    def test_sweep_conf_trainer_knobs_are_honored(self, tmp_path, capsys):
        """TRAINER_BACKEND from the conf reaches the sweep specs: a
        non-capes sweep under a conf that asks for a decoupled trainer
        must be rejected even with no CLI trainer flags."""
        conf = tmp_path / "conf.py"
        conf.write_text(
            "def WORKLOAD(cluster, seed):\n"
            "    from repro.workloads import RandomReadWrite\n"
            "    return RandomReadWrite(cluster, seed=seed)\n"
            "TRAINER_BACKEND = 'serial'\n"
        )
        from repro.cli import main

        rc = main(
            ["sweep", "--config", str(conf), "--tuners", "random"]
        )
        assert rc == 2
        assert "TRAINER_BACKEND" in capsys.readouterr().err

    def test_conf_loader_reads_trainer_knobs(self, tmp_path):
        conf = tmp_path / "conf.py"
        conf.write_text(
            "def WORKLOAD(cluster, seed):\n"
            "    from repro.workloads import RandomReadWrite\n"
            "    return RandomReadWrite(cluster, seed=seed)\n"
            "TRAINER_BACKEND = 'process'\n"
            "TRAIN_RATIO = 0.5\n"
            "SYNC_EVERY = 16\n"
        )
        from repro.core.config import load_config

        cfg = load_config(str(conf))
        assert cfg.trainer_backend == "process"
        assert cfg.train_ratio == 0.5
        assert cfg.sync_every == 16
