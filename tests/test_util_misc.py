"""Tests for repro.util.{rng,units,timeline,validation}."""

import numpy as np
import pytest

from repro.util import (
    GiB,
    KiB,
    MiB,
    TickClock,
    check_finite,
    check_in_range,
    check_nonnegative,
    check_positive,
    derive_rng,
    ensure_rng,
    format_bytes,
    format_rate,
    mb_per_s,
)


class TestRng:
    def test_ensure_rng_from_int_is_deterministic(self):
        a = ensure_rng(42).random(4)
        b = ensure_rng(42).random(4)
        np.testing.assert_array_equal(a, b)

    def test_ensure_rng_passthrough(self):
        g = np.random.default_rng(0)
        assert ensure_rng(g) is g

    def test_ensure_rng_none(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_derive_rng_children_independent_of_sibling_order(self):
        p1 = ensure_rng(7)
        a1 = derive_rng(p1, "disk").random(3)

        p2 = ensure_rng(7)
        a2 = derive_rng(p2, "disk").random(3)
        np.testing.assert_array_equal(a1, a2)

    def test_derive_rng_distinct_keys_distinct_streams(self):
        p = ensure_rng(7)
        a = derive_rng(p, "a").random(8)
        b = derive_rng(p, "b").random(8)
        assert not np.allclose(a, b)

    def test_derive_rng_stable_across_interpreter_invocations(self):
        # Golden value: derivation must not involve Python's salted
        # str hash, or every "seeded" run differs per process and the
        # paper's repeated-measurement statistics become meaningless.
        child = derive_rng(ensure_rng(0), "agent")
        assert int(child.integers(10**6)) == 601261


class TestUnits:
    def test_constants(self):
        assert KiB == 1024
        assert MiB == 1024**2
        assert GiB == 1024**3

    def test_mb_per_s(self):
        assert mb_per_s(1) == MiB

    @pytest.mark.parametrize(
        "n,expect",
        [
            (512, "512 B"),
            (1536, "1.5 KB"),
            (2 * MiB, "2.0 MB"),
            (3 * GiB, "3.0 GB"),
        ],
    )
    def test_format_bytes(self, n, expect):
        assert format_bytes(n) == expect

    def test_format_rate(self):
        assert format_rate(106 * MiB) == "106.0 MB/s"


class TestTickClock:
    def test_tick_of(self):
        c = TickClock(tick_length=1.0)
        assert c.tick_of(0.0) == 0
        assert c.tick_of(0.999) == 0
        assert c.tick_of(1.0) == 1

    def test_time_of_roundtrip(self):
        c = TickClock(tick_length=0.5, offset=2.0)
        for k in range(10):
            assert c.tick_of(c.time_of(k)) == k

    def test_next_tick_time(self):
        c = TickClock(1.0)
        assert c.next_tick_time(0.0) == 1.0
        assert c.next_tick_time(1.0) == 2.0
        assert c.next_tick_time(1.5) == 2.0

    def test_ticks_between(self):
        c = TickClock(1.0)
        assert c.ticks_between(0.0, 5.0) == 5
        assert c.ticks_between(0.5, 0.9) == 0

    def test_ticks_between_reversed_raises(self):
        with pytest.raises(ValueError):
            TickClock(1.0).ticks_between(2.0, 1.0)

    def test_bad_tick_length(self):
        with pytest.raises(ValueError):
            TickClock(0.0)


class TestValidation:
    def test_check_positive(self):
        check_positive("x", 1)
        with pytest.raises(ValueError):
            check_positive("x", 0)

    def test_check_nonnegative(self):
        check_nonnegative("x", 0)
        with pytest.raises(ValueError):
            check_nonnegative("x", -1)

    def test_check_finite(self):
        check_finite("x", 3.5)
        with pytest.raises(ValueError):
            check_finite("x", float("inf"))
        with pytest.raises(ValueError):
            check_finite("x", float("nan"))

    def test_check_in_range_bounds(self):
        check_in_range("x", 0.5, 0, 1)
        check_in_range("x", 0, 0, 1)
        with pytest.raises(ValueError):
            check_in_range("x", 0, 0, 1, low_inclusive=False)
        with pytest.raises(ValueError):
            check_in_range("x", 2, 0, 1)
