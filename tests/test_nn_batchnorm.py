"""Tests for batch normalization and its MLP integration."""

import numpy as np
import pytest

from repro.nn import MLP, Adam, BatchNorm1d
from repro.nn.checkpoint import load_checkpoint, save_checkpoint
from repro.nn.losses import mse_loss


class TestBatchNorm1d:
    def test_training_output_standardized(self):
        bn = BatchNorm1d(3)
        rng = np.random.default_rng(0)
        x = rng.normal(5.0, 3.0, size=(256, 3))
        y = bn.forward(x)
        np.testing.assert_allclose(y.mean(axis=0), 0.0, atol=1e-9)
        np.testing.assert_allclose(y.std(axis=0), 1.0, atol=1e-2)

    def test_gamma_beta_affect_output(self):
        bn = BatchNorm1d(2)
        bn.gamma.value[...] = [2.0, 1.0]
        bn.beta.value[...] = [0.0, 5.0]
        x = np.random.default_rng(1).normal(size=(64, 2))
        y = bn.forward(x)
        assert y[:, 0].std() == pytest.approx(2.0, rel=0.05)
        assert y[:, 1].mean() == pytest.approx(5.0, abs=1e-6)

    def test_running_stats_track_data(self):
        bn = BatchNorm1d(1, momentum=0.5)
        x = np.full((16, 1), 10.0) + np.random.default_rng(2).normal(
            0, 0.1, (16, 1)
        )
        for _ in range(20):
            bn.forward(x)
        assert bn.running_mean[0] == pytest.approx(10.0, abs=0.2)

    def test_eval_mode_uses_running_stats(self):
        bn = BatchNorm1d(1, momentum=1.0)
        train_x = np.array([[0.0], [2.0]])  # mean 1, var 1
        bn.forward(train_x)
        bn.eval_mode()
        y = bn.forward(np.array([[1.0]]))
        assert y[0, 0] == pytest.approx(0.0, abs=1e-3)

    def test_single_sample_in_training_uses_running_stats(self):
        bn = BatchNorm1d(2)
        y = bn.forward(np.ones((1, 2)))
        assert np.isfinite(y).all()

    def test_backward_matches_finite_differences(self):
        rng = np.random.default_rng(3)
        bn = BatchNorm1d(3)
        x = rng.normal(size=(8, 3))
        target = rng.normal(size=(8, 3))

        def loss_of(x_in):
            bn2 = BatchNorm1d(3)
            bn2.gamma.value[...] = bn.gamma.value
            bn2.beta.value[...] = bn.beta.value
            val, _ = mse_loss(bn2.forward(x_in), target)
            return val

        out = bn.forward(x)
        _, dpred = mse_loss(out, target)
        gin = bn.backward(dpred)
        eps = 1e-6
        for idx in [(0, 0), (3, 1), (7, 2)]:
            up = x.copy()
            up[idx] += eps
            dn = x.copy()
            dn[idx] -= eps
            num = (loss_of(up) - loss_of(dn)) / (2 * eps)
            assert gin[idx] == pytest.approx(num, rel=1e-4, abs=1e-8)

    def test_gamma_beta_gradients(self):
        rng = np.random.default_rng(4)
        bn = BatchNorm1d(2)
        x = rng.normal(size=(16, 2))
        target = rng.normal(size=(16, 2))
        out = bn.forward(x)
        _, dpred = mse_loss(out, target)
        bn.backward(dpred)
        eps = 1e-6

        def loss_with_gamma(g0):
            bn2 = BatchNorm1d(2)
            bn2.gamma.value[...] = bn.gamma.value
            bn2.gamma.value[0] = g0
            bn2.beta.value[...] = bn.beta.value
            val, _ = mse_loss(bn2.forward(x), target)
            return val

        g0 = bn.gamma.value[0]
        num = (loss_with_gamma(g0 + eps) - loss_with_gamma(g0 - eps)) / (2 * eps)
        assert bn.gamma.grad[0] == pytest.approx(num, rel=1e-4)

    def test_shape_validation(self):
        bn = BatchNorm1d(3)
        with pytest.raises(ValueError):
            bn.forward(np.zeros((4, 2)))

    def test_backward_before_forward(self):
        with pytest.raises(RuntimeError):
            BatchNorm1d(2).backward(np.ones((2, 2)))

    def test_bad_params(self):
        with pytest.raises(ValueError):
            BatchNorm1d(0)
        with pytest.raises(ValueError):
            BatchNorm1d(2, momentum=0.0)


class TestMLPWithBatchNorm:
    def test_parameters_include_gamma_beta(self):
        plain = MLP([4, 8, 2], rng=0)
        bn = MLP([4, 8, 2], use_batchnorm=True, rng=0)
        assert len(bn.parameters()) == len(plain.parameters()) + 2

    def test_training_reduces_loss(self):
        rng = np.random.default_rng(0)
        net = MLP([4, 16, 2], use_batchnorm=True, rng=1)
        opt = Adam(lr=1e-2)
        x = rng.normal(size=(64, 4))
        target = np.stack([x[:, 0] + x[:, 1], x[:, 2] - x[:, 3]], axis=1)
        first = None
        for _ in range(200):
            net.zero_grad()
            loss, dpred = mse_loss(net.forward(x), target)
            if first is None:
                first = loss
            net.backward(dpred)
            opt.step(net.parameters())
        assert loss < first * 0.2

    def test_eval_mode_deterministic_single_obs(self):
        net = MLP([4, 8, 2], use_batchnorm=True, rng=0)
        net.forward(np.random.default_rng(0).normal(size=(32, 4)))
        net.eval_mode()
        x = np.ones(4)
        np.testing.assert_array_equal(net.forward(x), net.forward(x))

    def test_clone_copies_running_stats(self):
        net = MLP([4, 8, 2], use_batchnorm=True, rng=0)
        net.forward(np.random.default_rng(0).normal(3.0, 1.0, size=(64, 4)))
        twin = net.clone()
        net.eval_mode()
        twin.eval_mode()
        x = np.random.default_rng(1).normal(size=(5, 4))
        np.testing.assert_array_equal(net.forward(x), twin.forward(x))

    def test_checkpoint_roundtrip_with_batchnorm(self, tmp_path):
        net = MLP([4, 8, 2], use_batchnorm=True, rng=0)
        net.forward(np.random.default_rng(0).normal(2.0, 1.0, size=(64, 4)))
        path = tmp_path / "bn.npz"
        save_checkpoint(path, net)
        net2, _ = load_checkpoint(path)
        assert net2.use_batchnorm
        net.eval_mode()
        net2.eval_mode()
        x = np.random.default_rng(1).normal(size=(3, 4))
        np.testing.assert_array_equal(net.forward(x), net2.forward(x))
