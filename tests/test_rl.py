"""Tests for Q-learning: hyperparams, epsilon, target, qnetwork, agent."""

import numpy as np
import pytest

from repro.nn import MLP, Adam
from repro.replaydb import MinibatchSampler, ReplayDB
from repro.replaydb.records import Minibatch
from repro.rl import DQNAgent, EpsilonSchedule, Hyperparameters, QNetwork, soft_update


class TestHyperparameters:
    def test_defaults_match_table1(self):
        hp = Hyperparameters()
        assert hp.action_tick_length == 1.0
        assert hp.epsilon_initial == 1.0
        assert hp.epsilon_final == 0.05
        assert hp.discount_rate == 0.99
        assert hp.minibatch_size == 32
        assert hp.missing_entry_tolerance == 0.20
        assert hp.n_hidden_layers == 2
        assert hp.adam_learning_rate == 1e-4
        assert hp.sampling_tick_length == 1.0
        assert hp.sampling_ticks_per_observation == 10
        assert hp.target_network_update_rate == 0.01
        assert hp.exploration_ticks == 7200  # 2 hours of 1 s ticks

    def test_paper_values_hidden_600(self):
        assert Hyperparameters.paper_values().hidden_layer_size == 600

    def test_validation(self):
        with pytest.raises(ValueError):
            Hyperparameters(discount_rate=1.5)
        with pytest.raises(ValueError):
            Hyperparameters(epsilon_final=0.9, epsilon_initial=0.5)
        with pytest.raises(ValueError):
            Hyperparameters(minibatch_size=0)

    def test_table_rows(self):
        rows = Hyperparameters().table()
        names = [n for n, _ in rows]
        assert "discount_rate" in names and len(rows) >= 12


class TestEpsilonSchedule:
    def test_linear_anneal(self):
        s = EpsilonSchedule(initial=1.0, final=0.0, anneal_ticks=10)
        values = [s.step() for _ in range(10)]
        assert values[0] == 1.0
        assert values[-1] == pytest.approx(0.1)
        assert s.value == pytest.approx(0.0)

    def test_floor_at_final(self):
        s = EpsilonSchedule(initial=1.0, final=0.05, anneal_ticks=10)
        for _ in range(100):
            s.step()
        assert s.value == 0.05

    def test_bump_raises_only_upward(self):
        s = EpsilonSchedule(initial=1.0, final=0.05, anneal_ticks=10, bump_value=0.2)
        for _ in range(100):
            s.step()
        s.bump()
        assert s.value == 0.2
        assert s.bumps == 1
        # bumping while epsilon is higher leaves epsilon alone, but the
        # notification still counts: bumps is workload-change telemetry,
        # not raised-epsilon telemetry.
        s2 = EpsilonSchedule(anneal_ticks=10)
        s2.bump()
        assert s2.value == 1.0 and s2.bumps == 1

    def test_anneal_continues_after_bump(self):
        s = EpsilonSchedule(initial=1.0, final=0.0, anneal_ticks=10, bump_value=0.5)
        for _ in range(100):
            s.step()
        s.bump()
        s.step()
        assert s.value == pytest.approx(0.4)

    def test_freeze_final(self):
        s = EpsilonSchedule()
        s.freeze_final()
        assert s.value == s.final

    def test_validation(self):
        with pytest.raises(ValueError):
            EpsilonSchedule(initial=0.1, final=0.5)
        with pytest.raises(ValueError):
            EpsilonSchedule(anneal_ticks=0)


class TestSoftUpdate:
    def test_alpha_one_copies(self):
        a = MLP([2, 3, 2], rng=0)
        b = MLP([2, 3, 2], rng=1)
        soft_update(a, b, alpha=1.0)
        for pa, pb in zip(a.parameters(), b.parameters()):
            np.testing.assert_array_equal(pa.value, pb.value)

    def test_alpha_zero_keeps(self):
        a = MLP([2, 3, 2], rng=0)
        before = a.get_weights()
        soft_update(a, MLP([2, 3, 2], rng=1), alpha=0.0)
        for w0, w1 in zip(before, a.get_weights()):
            np.testing.assert_array_equal(w0, w1)

    def test_blend_is_convex(self):
        a = MLP([2, 2, 2], rng=0)
        b = MLP([2, 2, 2], rng=1)
        wa = a.get_weights()
        wb = b.get_weights()
        soft_update(a, b, alpha=0.25)
        for w0, w1, wt in zip(wa, wb, a.get_weights()):
            np.testing.assert_allclose(wt, 0.75 * w0 + 0.25 * w1)

    def test_contraction_toward_online(self):
        """Repeated soft updates converge the target to the online net."""
        a = MLP([2, 3, 2], rng=0)
        b = MLP([2, 3, 2], rng=1)
        for _ in range(600):
            soft_update(a, b, alpha=0.05)
        for pa, pb in zip(a.parameters(), b.parameters()):
            np.testing.assert_allclose(pa.value, pb.value, atol=1e-8)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            soft_update(MLP([2, 3, 2], rng=0), MLP([2, 4, 2], rng=0), 0.5)


class TestQNetwork:
    def test_q_values_shape(self):
        q = QNetwork(MLP([4, 4, 3], rng=0))
        assert q.q_values(np.zeros((5, 4))).shape == (5, 3)
        assert q.n_actions == 3 and q.obs_dim == 4

    def test_best_action_argmax(self):
        q = QNetwork(MLP([2, 3, 4], rng=0))
        obs = np.array([0.3, -0.2])
        assert q.best_action(obs) == int(np.argmax(q.q_values(obs)))

    def test_td_backward_only_taken_action(self):
        q = QNetwork(MLP([3, 4, 2], rng=0))
        obs = np.random.default_rng(0).normal(size=(4, 3))
        actions = np.array([0, 1, 0, 1])
        targets = q.q_values(obs)[np.arange(4), actions]  # perfect targets
        q.net.zero_grad()
        loss = q.td_backward(obs, actions, targets)
        assert loss == pytest.approx(0.0)
        for p in q.net.parameters():
            np.testing.assert_allclose(p.grad, 0.0, atol=1e-12)

    def test_td_backward_validates(self):
        q = QNetwork(MLP([3, 4, 2], rng=0))
        with pytest.raises(ValueError):
            q.td_backward(np.zeros((2, 3)), np.array([0]), np.zeros(2))
        with pytest.raises(ValueError):
            q.td_backward(np.zeros((2, 3)), np.array([0, 5]), np.zeros(2))

    def test_bad_loss_name(self):
        with pytest.raises(ValueError):
            QNetwork(MLP([2, 2, 2], rng=0), loss="nope")


def synthetic_batch(obs_dim, n, rng, reward_of_action=None):
    s = rng.normal(size=(n, obs_dim))
    s2 = rng.normal(size=(n, obs_dim))
    a = rng.integers(0, 3, size=n)
    r = rng.normal(size=n) if reward_of_action is None else reward_of_action(a)
    return Minibatch(s_t=s, s_next=s2, actions=a, rewards=r.astype(np.float64))


class TestDQNAgent:
    def make(self, hp=None):
        hp = hp or Hyperparameters(
            hidden_layer_size=8, exploration_ticks=50, discount_rate=0.0
        )
        return DQNAgent(obs_dim=6, n_actions=3, hp=hp, rng=0)

    def test_act_range(self):
        agent = self.make()
        obs = np.zeros(6)
        for _ in range(20):
            assert 0 <= agent.act(obs) < 3

    def test_greedy_act_deterministic(self):
        agent = self.make()
        obs = np.ones(6)
        acts = {agent.act(obs, greedy=True) for _ in range(5)}
        assert len(acts) == 1
        # greedy never consumes epsilon schedule
        assert agent.epsilon.ticks == 0

    def test_epsilon_consumed_per_act(self):
        agent = self.make()
        before = agent.epsilon.value
        agent.act(np.zeros(6))
        assert agent.epsilon.ticks == 1
        assert agent.epsilon.value < before

    def test_train_step_reduces_loss_on_fixed_problem(self):
        """γ=0 turns DQN into regression on rewards: loss must fall."""
        hp = Hyperparameters(
            hidden_layer_size=16,
            discount_rate=0.0,
            adam_learning_rate=3e-3,
            target_network_update_rate=0.05,
        )
        agent = DQNAgent(obs_dim=4, n_actions=3, hp=hp, rng=0)
        rng = np.random.default_rng(0)
        # reward depends deterministically on the action
        batch = synthetic_batch(
            4, 64, rng, reward_of_action=lambda a: a.astype(np.float64)
        )
        first = agent.train_step(batch)
        for _ in range(300):
            last = agent.train_step(batch)
        assert last < first * 0.1

    def test_bellman_targets_gamma_zero_is_reward(self):
        agent = self.make()
        b = synthetic_batch(6, 8, np.random.default_rng(1))
        np.testing.assert_allclose(agent.bellman_targets(b), b.rewards)

    def test_bellman_targets_use_target_net_max(self):
        hp = Hyperparameters(hidden_layer_size=8, discount_rate=0.5)
        agent = DQNAgent(obs_dim=6, n_actions=3, hp=hp, rng=0)
        b = synthetic_batch(6, 4, np.random.default_rng(2))
        q_next = agent.target.q_values(b.s_next)
        expect = b.rewards + 0.5 * q_next.max(axis=1)
        np.testing.assert_allclose(agent.bellman_targets(b), expect)

    def test_workload_change_bumps_epsilon(self):
        agent = self.make()
        for _ in range(100):
            agent.act(np.zeros(6))
        assert agent.epsilon.value == 0.05
        agent.notify_workload_change()
        assert agent.epsilon.value == 0.20

    def test_workload_change_telemetry_counts_every_notification(self):
        """Regression: a change arriving while epsilon is still high
        must count in ``bumps`` even though epsilon does not move."""
        agent = self.make()
        agent.notify_workload_change()  # epsilon still at initial
        assert agent.epsilon.bumps == 1
        for _ in range(100):
            agent.act(np.zeros(6))
        agent.notify_workload_change()  # now it raises epsilon too
        assert agent.epsilon.bumps == 2
        assert agent.epsilon.value == 0.20

    def test_train_from_sampler_starved_returns_none(self):
        agent = self.make()
        db = ReplayDB(2)
        sampler = MinibatchSampler(db.cache, obs_ticks=3)
        assert agent.train_from_sampler(sampler) is None

    def test_loss_history_grows(self):
        agent = self.make()
        b = synthetic_batch(6, 8, np.random.default_rng(3))
        agent.train_step(b)
        agent.train_step(b)
        assert len(agent.loss_history) == 2
        assert agent.train_steps == 2

    def test_loss_history_bounded(self):
        """Long sweeps must not grow the trace without limit: the window
        keeps exactly the most recent losses, in order."""
        hp = Hyperparameters(
            hidden_layer_size=8, exploration_ticks=50, discount_rate=0.0
        )
        agent = DQNAgent(
            obs_dim=6, n_actions=3, hp=hp, loss_history_limit=10, rng=0
        )
        b = synthetic_batch(6, 8, np.random.default_rng(3))
        losses = [agent.train_step(b) for _ in range(25)]
        assert agent.train_steps == 25  # counters unaffected by the cap
        assert len(agent.loss_history) == 10
        assert list(agent.loss_history) == losses[-10:]

    def test_loss_history_limit_validated(self):
        with pytest.raises(ValueError, match="loss_history_limit"):
            DQNAgent(obs_dim=6, n_actions=3, loss_history_limit=0, rng=0)


class TestDoubleDQN:
    """The ``double_dqn`` target split (van Hasselt et al., 2016)."""

    GAMMA = 0.5

    def make(self, double: bool) -> DQNAgent:
        hp = Hyperparameters(hidden_layer_size=8, discount_rate=self.GAMMA)
        agent = DQNAgent(
            obs_dim=6, n_actions=3, hp=hp, double_dqn=double, rng=0
        )
        # Fresh agents clone online into target, which makes both
        # argmaxes agree everywhere and the flag unobservable; desync
        # the target so action *selection* and *evaluation* differ.
        perturb = np.random.default_rng(7)
        for p in agent.target.net.parameters():
            p.value += 0.5 * perturb.normal(size=p.value.shape)
        return agent

    def batch(self):
        return synthetic_batch(6, 16, np.random.default_rng(11))

    def test_double_targets_select_online_evaluate_target(self):
        """y = r + γ · Q_target(s', argmax_a Q_online(s', a))."""
        agent = self.make(double=True)
        b = self.batch()
        q_next_online = agent.online.q_values(b.s_next)
        q_next_target = agent.target.q_values(b.s_next)
        chosen = np.argmax(q_next_online, axis=1)
        expect = b.rewards + self.GAMMA * q_next_target[
            np.arange(len(b)), chosen
        ]
        np.testing.assert_allclose(agent.bellman_targets(b), expect)
        # The split must be observable: on some row the online argmax
        # disagrees with the target argmax, so double != vanilla.
        vanilla = b.rewards + self.GAMMA * q_next_target.max(axis=1)
        assert (chosen != np.argmax(q_next_target, axis=1)).any()
        assert not np.allclose(expect, vanilla)

    def test_double_false_reproduces_vanilla_max(self):
        """The default flag is Equation 1's plain max operator."""
        agent = self.make(double=False)
        b = self.batch()
        q_next_target = agent.target.q_values(b.s_next)
        expect = b.rewards + self.GAMMA * q_next_target.max(axis=1)
        np.testing.assert_allclose(agent.bellman_targets(b), expect)

    @pytest.mark.parametrize("double", [False, True])
    def test_train_step_loss_matches_hand_computed_targets(self, double):
        """train_step's reported loss is the MSE between the pre-update
        online Q(s,a) and the hand-computed TD target."""
        agent = self.make(double=double)
        b = self.batch()
        q_next_target = agent.target.q_values(b.s_next)
        if double:
            chosen = np.argmax(agent.online.q_values(b.s_next), axis=1)
            future = q_next_target[np.arange(len(b)), chosen]
        else:
            future = q_next_target.max(axis=1)
        targets = b.rewards + self.GAMMA * future
        q_taken = agent.online.q_values(b.s_t)[np.arange(len(b)), b.actions]
        expected_loss = float(np.mean((q_taken - targets) ** 2))
        assert agent.train_step(b) == pytest.approx(expected_loss)

    def test_double_never_exceeds_vanilla_targets(self):
        """Evaluating the online pick with θ⁻ can only lower the future
        term versus the max — the optimism-bias removal itself."""
        vanilla = self.make(double=False)
        double = self.make(double=True)
        b = self.batch()
        assert (double.bellman_targets(b) <= vanilla.bellman_targets(b) + 1e-12).all()
