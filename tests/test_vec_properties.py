"""Property-based fleet-size independence of the vec engine.

The struct-of-arrays backend promises that env ``i``'s trajectory is a
function of ``(base_seed, i)`` only — never of how many other clusters
share the arrays.  The engine earns this by keeping every per-env RNG
draw on per-env ``(n_clients,)`` arrays (fixed shape → fixed SIMD code
path) and every array op elementwise or trailing-axis-reduced.  This
test drives the promise across random seeds, env indices and scenario
timelines: the same row must be byte-identical in a 2-env and an
8-env fleet.
"""

import hashlib

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterConfig
from repro.env import make_env
from repro.env.registry import _default_workload
from repro.rl import Hyperparameters

N_TICKS = 6

HP = Hyperparameters(
    hidden_layer_size=8,
    exploration_ticks=20,
    sampling_ticks_per_observation=3,
)
ENV_KW = dict(cluster=ClusterConfig(n_servers=2, n_clients=2), hp=HP)

SCENARIOS = {
    None: None,
    "sim-lustre-degraded": dict(start_tick=3),
    "sim-lustre-churn": dict(
        first_tick=3, period=4, absence_ticks=2, n_cycles=2
    ),
}


def _env_digest(seed: int, scenario, n_envs: int, i: int) -> str:
    """Digest of env ``i``'s trace inside an ``n_envs``-sized fleet."""
    kw = dict(ENV_KW)
    if scenario is None:
        kw["workload_factory"] = _default_workload
    else:
        kw["scenario"] = scenario
        kw["scenario_kwargs"] = SCENARIOS[scenario]
    fleet = make_env("sim-lustre-vec", seed=seed, n_envs=n_envs, **kw)
    h = hashlib.blake2b(digest_size=16)
    try:
        obs = fleet.reset()
        h.update(np.ascontiguousarray(obs[i], dtype=np.float64).tobytes())
        for t in range(N_TICKS):
            obs, rewards, _infos = fleet.step(
                [t % fleet.n_actions] * n_envs
            )
            h.update(np.ascontiguousarray(obs[i], dtype=np.float64).tobytes())
            h.update(np.float64(rewards[i]).tobytes())
    finally:
        fleet.close()
    return h.hexdigest()


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    i=st.integers(min_value=0, max_value=1),
    scenario=st.sampled_from(sorted(SCENARIOS, key=str)),
)
def test_env_stream_independent_of_fleet_size(seed, i, scenario):
    small = _env_digest(seed, scenario, n_envs=2, i=i)
    large = _env_digest(seed, scenario, n_envs=8, i=i)
    assert small == large, (
        f"env {i} of seed {seed} ({scenario or 'plain'}) diverged between "
        f"fleet sizes 2 and 8: per-env streams leak fleet-size dependence"
    )


# -- fuzzed scenarios (repro.scenarios.fuzz) -------------------------------
#
# Fuzzed timelines resolve by name (fuzz-<root_seed>-<index>) through
# the scenario-registry resolver, so the same promises must hold for a
# timeline nobody hand-wrote: env i's vec stream is fleet-size
# independent, and on the reference backend a fuzzed run is
# *placement-independent* — serial and fork workers produce
# byte-identical traces at n_envs 1 and 4.  (The vec engine's fluid
# physics intentionally differ from the reference object graph, so
# cross-backend trace equality is not a contract; fleet-size
# independence is the vec-side half of placement independence.)

#: Compressed generator horizon so fuzzed events actually fire (and
#: windowed ones revert) inside the short property rollouts.
FUZZ_KW = dict(horizon=12)


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    root_seed=st.integers(min_value=0, max_value=2**31 - 1),
    index=st.integers(min_value=0, max_value=7),
    i=st.integers(min_value=0, max_value=1),
)
def test_fuzzed_env_stream_independent_of_fleet_size(root_seed, index, i):
    name = f"fuzz-{root_seed}-{index}"
    kw = dict(ENV_KW, workload_factory=_default_workload)
    small = _fuzzed_vec_digest(name, n_envs=2, i=i, env_kw=kw)
    large = _fuzzed_vec_digest(name, n_envs=8, i=i, env_kw=kw)
    assert small == large, (
        f"env {i} of fuzzed scenario {name} diverged between fleet "
        f"sizes 2 and 8"
    )


def _fuzzed_vec_digest(name: str, n_envs: int, i: int, env_kw) -> str:
    fleet = make_env(
        "sim-lustre-vec",
        seed=7,
        n_envs=n_envs,
        scenario=name,
        scenario_kwargs=FUZZ_KW,
        **env_kw,
    )
    h = hashlib.blake2b(digest_size=16)
    try:
        obs = fleet.reset()
        h.update(np.ascontiguousarray(obs[i], dtype=np.float64).tobytes())
        for t in range(N_TICKS):
            obs, rewards, _infos = fleet.step([t % fleet.n_actions] * n_envs)
            h.update(np.ascontiguousarray(obs[i], dtype=np.float64).tobytes())
            h.update(np.float64(rewards[i]).tobytes())
    finally:
        fleet.close()
    return h.hexdigest()


def _fuzzed_vector_digest(name: str, n: int, backend: str) -> str:
    from repro.env import VectorEnv

    venv = VectorEnv.from_registry(
        name,
        n,
        base_seed=11,
        backend=backend,
        env_kwargs=dict(scenario_kwargs=FUZZ_KW, **ENV_KW),
    )
    h = hashlib.blake2b(digest_size=16)
    try:
        obs = venv.reset()
        h.update(np.ascontiguousarray(obs, dtype=np.float64).tobytes())
        for t in range(N_TICKS):
            obs, rewards, _infos = venv.step([t % venv.n_actions] * n)
            h.update(np.ascontiguousarray(obs, dtype=np.float64).tobytes())
            h.update(
                np.ascontiguousarray(rewards, dtype=np.float64).tobytes()
            )
    finally:
        venv.close()
    return h.hexdigest()


@settings(
    max_examples=4,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    root_seed=st.integers(min_value=0, max_value=2**31 - 1),
    index=st.integers(min_value=0, max_value=7),
)
def test_fuzzed_run_is_placement_independent(root_seed, index):
    # The fuzzed scenario rebuilds from its *name* inside each fork
    # worker (registry resolver), so serial and fork must agree at
    # both fleet sizes — and the n_envs=1 replica is the degenerate
    # placement every larger fleet's replica 0 must match.
    name = f"fuzz-{root_seed}-{index}"
    for n_envs in (1, 4):
        serial = _fuzzed_vector_digest(name, n_envs, "serial")
        fork = _fuzzed_vector_digest(name, n_envs, "fork")
        assert serial == fork, (
            f"fuzzed scenario {name} diverged between serial and fork "
            f"at n_envs={n_envs}: placement changed a seeded run"
        )
