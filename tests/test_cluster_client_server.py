"""Integration tests: OSC <-> server round trips, caches, tunables."""

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.cluster.client import WriteCache
from repro.sim import Simulator, Timeout
from repro.util.units import KiB, MiB


def small_cluster(**overrides):
    cfg = ClusterConfig(
        n_servers=2,
        n_clients=2,
        **overrides,
    )
    sim = Simulator()
    return sim, Cluster(sim, cfg)


class TestWriteCache:
    def test_reserve_within_capacity_immediate(self):
        sim = Simulator()
        c = WriteCache(sim, max_dirty_bytes=10)
        done = []

        def proc():
            yield c.reserve(6)
            done.append(sim.now)

        sim.spawn(proc())
        sim.run()
        assert done == [0.0] and c.dirty == 6

    def test_reserve_blocks_until_commit(self):
        sim = Simulator()
        c = WriteCache(sim, max_dirty_bytes=10)
        log = []

        def writer():
            yield c.reserve(8)
            yield c.reserve(8)  # must wait for the commit below
            log.append(sim.now)

        def committer():
            yield Timeout(3.0)
            c.commit(8)

        sim.spawn(writer())
        sim.spawn(committer())
        sim.run()
        assert log == [3.0]

    def test_fifo_reservations(self):
        sim = Simulator()
        c = WriteCache(sim, max_dirty_bytes=10)
        order = []

        def filler():
            yield c.reserve(10)

        def w(name, size, delay):
            yield Timeout(delay)
            yield c.reserve(size)
            order.append(name)

        sim.spawn(filler())
        sim.spawn(w("big", 9, 0.1))
        sim.spawn(w("small", 1, 0.2))

        def committer():
            yield Timeout(1.0)
            c.commit(10)

        sim.spawn(committer())
        sim.run()
        assert order == ["big", "small"]

    def test_oversized_write_rejected(self):
        sim = Simulator()
        c = WriteCache(sim, max_dirty_bytes=10)
        with pytest.raises(ValueError):
            c.reserve(11)

    def test_overcommit_rejected(self):
        sim = Simulator()
        c = WriteCache(sim, max_dirty_bytes=10)
        with pytest.raises(ValueError):
            c.commit(1)


class TestReadPath:
    def test_read_completes_and_counts_bytes(self):
        sim, cluster = small_cluster()
        fs = cluster.fs(0)

        def app():
            yield from fs.read(obj_id=1, offset=0, size=64 * KiB)

        p = sim.spawn(app())
        sim.run()
        assert p.ok
        assert cluster.total_bytes_read() == 64 * KiB

    def test_multi_stripe_read_fans_out(self):
        sim, cluster = small_cluster()
        fs = cluster.fs(0)

        def app():
            yield from fs.read(obj_id=1, offset=0, size=3 * MiB)

        sim.spawn(app())
        sim.run()
        # 3 MiB over 2 servers at 1 MiB stripes: both servers touched.
        r0 = cluster.metrics.value("server.0.bytes_read")
        r1 = cluster.metrics.value("server.1.bytes_read")
        assert r0 > 0 and r1 > 0 and r0 + r1 == 3 * MiB

    def test_read_updates_secondary_indicators(self):
        sim, cluster = small_cluster()
        fs = cluster.fs(0)

        def app():
            for i in range(5):
                yield from fs.read(obj_id=1, offset=i * 32 * KiB, size=32 * KiB)

        sim.spawn(app())
        sim.run()
        osc = cluster.clients[0].oscs[0]
        assert osc.ack_ewma.count >= 1
        assert osc.send_ewma.count >= 1
        assert osc.pt_ratio >= 1.0


class TestWritePath:
    def test_write_returns_at_cache_speed_then_drains(self):
        sim, cluster = small_cluster()
        fs = cluster.fs(0)
        cached_at = []

        def app():
            yield from fs.write(obj_id=1, offset=0, size=256 * KiB)
            cached_at.append(sim.now)
            yield from cluster.clients[0].flush_barrier()

        p = sim.spawn(app())
        sim.run()
        assert p.ok
        # Caching is quick relative to the disk flush.
        assert cached_at[0] < sim.now
        assert cluster.total_bytes_written() == 256 * KiB

    def test_dirty_bytes_bounded_by_cache(self):
        sim, cluster = small_cluster(max_dirty_bytes=1 * MiB)
        fs = cluster.fs(0)

        def app():
            for i in range(32):
                yield from fs.write(obj_id=1, offset=i * 512 * KiB, size=512 * KiB)
            yield from cluster.clients[0].flush_barrier()

        sim.spawn(app())
        max_dirty_seen = 0

        def probe():
            nonlocal max_dirty_seen
            while True:
                yield Timeout(0.005)
                for osc in cluster.clients[0].oscs.values():
                    max_dirty_seen = max(max_dirty_seen, osc.cache.dirty)

        probe_p = sim.spawn(probe())
        sim.run(until=60.0)
        assert max_dirty_seen <= 1 * MiB
        assert cluster.total_bytes_written() == 16 * MiB


class TestTunables:
    def test_window_applies_to_all_oscs(self):
        sim, cluster = small_cluster()
        cluster.set_max_rpcs_in_flight(3)
        for c in cluster.clients:
            assert c.max_rpcs_in_flight == 3
            for osc in c.oscs.values():
                assert osc.window.capacity == 3

    def test_rate_limit_applies(self):
        sim, cluster = small_cluster()
        cluster.set_io_rate_limit(123.0)
        for c in cluster.clients:
            assert c.io_rate_limit == 123.0

    def test_get_set_parameter_roundtrip(self):
        sim, cluster = small_cluster()
        cluster.set_parameter("max_rpcs_in_flight", 5)
        assert cluster.get_parameter("max_rpcs_in_flight") == 5.0
        cluster.set_parameter("io_rate_limit", 250.0)
        assert cluster.get_parameter("io_rate_limit") == 250.0

    def test_unknown_parameter_rejected(self):
        sim, cluster = small_cluster()
        with pytest.raises(KeyError):
            cluster.get_parameter("nope")
        with pytest.raises(KeyError):
            cluster.set_parameter("nope", 1)

    def test_window_limits_inflight_rpcs(self):
        sim, cluster = small_cluster(max_rpcs_in_flight=2)
        fs = cluster.fs(0)

        # Saturate with writes; in-flight per OSC must never exceed 2.
        def app():
            for i in range(64):
                yield from fs.write(obj_id=1, offset=i * 128 * KiB, size=128 * KiB)

        sim.spawn(app())
        max_inflight = 0

        def probe():
            nonlocal max_inflight
            while True:
                yield Timeout(0.001)
                for osc in cluster.clients[0].oscs.values():
                    max_inflight = max(max_inflight, osc.in_flight)

        sim.spawn(probe())
        sim.run(until=5.0)
        assert 0 < max_inflight <= 2

    def test_rate_limit_throttles_throughput(self):
        def run(rate):
            sim, cluster = small_cluster(io_rate_limit=rate, rate_burst=1.0)
            fs = cluster.fs(0)

            def app():
                i = 0
                while True:
                    yield from fs.write(
                        obj_id=1, offset=i * 32 * KiB, size=32 * KiB
                    )
                    i += 1

            sim.spawn(app())
            sim.run(until=10.0)
            return cluster.total_bytes_written()

        slow = run(5.0)
        fast = run(500.0)
        assert slow < 0.5 * fast


class TestMetaPath:
    def test_meta_ops_complete(self):
        sim, cluster = small_cluster()
        fs = cluster.fs(1)

        def app():
            yield from fs.create(obj_id=7)
            yield from fs.stat(obj_id=7)
            yield from fs.delete(obj_id=7)

        p = sim.spawn(app())
        sim.run()
        assert p.ok
        assert cluster.metrics.value("client.1.meta_ops") == 3


class TestPings:
    def test_ping_latency_positive_and_grows_under_load(self):
        sim, cluster = small_cluster()
        osc = cluster.clients[0].oscs[0]
        idle = osc.ping_latency
        cluster.fabric.send("client-0", "server-0", 50 * MiB, None)
        assert osc.ping_latency > idle > 0
