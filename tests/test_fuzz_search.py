"""The adversarial search driver (ScenarioFuzzer) and its CLI.

Mutation operators must preserve event invariants (frozen dataclass
validation re-runs on every mutant), the search must be deterministic
— ``jobs=1`` vs ``jobs=2`` yield identical frontiers, the same
contract test_exp_runner.py pins for plain sweeps — and a tiny budget
must land the seeded known-flat ``bursty`` region on the frontier.
Searches here run under a shrunken :class:`FuzzScoreConfig`; the CLI
default (BENCH-compatible) config is exercised by the slow-marked
end-to-end test and the ``scenario-fuzz`` CI job.
"""

import json

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.scenarios import ScenarioEvent, mutate_timeline
from repro.scenarios import strategies as fuzz_st
from repro.scenarios.fuzz import (
    DEFAULT_HORIZON,
    SEEDED_BURSTY_NAME,
    FuzzScoreConfig,
    ScenarioFuzzer,
    merge_frontier,
    repair_timeline,
)
from repro.util.rng import derive_rng, ensure_rng

#: Compressed scoring recipe: a capes+static pair in well under a
#: second, so searches stay inside the fast-lane budget.
TINY_SCORE = FuzzScoreConfig(
    n_clients=2,
    instances_per_client=2,
    hidden_layer_size=8,
    exploration_ticks=10,
    train_ticks=12,
    eval_ticks=6,
    epoch_ticks=6,
)


@settings(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    events=fuzz_st.timelines(),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    moves=st.integers(min_value=1, max_value=8),
)
def test_mutations_preserve_event_invariants(events, seed, moves):
    rng = derive_rng(ensure_rng(seed), "mutate")
    for _ in range(moves):
        events = mutate_timeline(events, rng)
        # Construction re-runs __post_init__ validation, so reaching
        # here means every mutant validated; check the structural
        # contract on top.
        assert 1 <= len(events) <= 10
        for ev in events:
            assert isinstance(ev, ScenarioEvent)
            assert 1 <= ev.at_tick <= DEFAULT_HORIZON
            assert ev.duration_ticks is None or ev.duration_ticks >= 0
        assert repair_timeline(events) == events


def test_mutation_stream_is_deterministic():
    from repro.scenarios import sample_scenario

    events = sample_scenario(11, 0).events
    a = mutate_timeline(events, derive_rng(ensure_rng(3), "m"))
    b = mutate_timeline(events, derive_rng(ensure_rng(3), "m"))
    assert a == b


class TestSearchDeterminism:
    def test_jobs_1_vs_jobs_2_identical_frontiers(self):
        r1 = ScenarioFuzzer(9, score_config=TINY_SCORE, jobs=1).search(
            "evolution", budget=5
        )
        r2 = ScenarioFuzzer(9, score_config=TINY_SCORE, jobs=2).search(
            "evolution", budget=5
        )
        s1, s2 = r1.frontier_section(5), r2.frontier_section(5)
        assert json.dumps(s1, sort_keys=True) == json.dumps(
            s2, sort_keys=True
        ), "serial vs parallel scoring changed the frontier"

    def test_two_searches_agree_across_instances(self):
        # A fresh fuzzer replays the identical search: scores are a
        # pure function of the spec and decisions a pure function of
        # scores, so nothing depends on instance or process history.
        kw = dict(score_config=TINY_SCORE)
        s1 = ScenarioFuzzer(21, **kw).search("hill_climb", budget=4)
        s2 = ScenarioFuzzer(21, **kw).search("hill_climb", budget=4)
        assert json.dumps(
            s1.frontier_section(4), sort_keys=True
        ) == json.dumps(s2.frontier_section(4), sort_keys=True)


class TestSearchBehavior:
    def test_tiny_budget_lands_the_seeded_bursty_region(self):
        result = ScenarioFuzzer(3, score_config=TINY_SCORE).search(
            "random", budget=2
        )
        frontier = result.frontier(top_k=8)
        names = [c.name for c in frontier]
        assert SEEDED_BURSTY_NAME in names, (
            "the seeded known-flat bursty timeline must be evaluated "
            "and reportable even at tiny budgets"
        )
        # Frontier is ranked most-flat/losing-for-capes first, with
        # finite scores throughout.
        pcts = [c.score.tuner_vs_static_pct for c in frontier]
        assert all(np.isfinite(p) for p in pcts)
        assert pcts == sorted(pcts, reverse=True)
        for cand in frontier:
            assert cand.score.capes_tuned > 0
            assert cand.score.static_tuned > 0

    def test_budget_counts_candidates(self):
        result = ScenarioFuzzer(5, score_config=TINY_SCORE).search(
            "evolution", budget=4
        )
        assert len(result.candidates) == 4

    def test_search_validates_inputs(self):
        fuzzer = ScenarioFuzzer(1, score_config=TINY_SCORE)
        with pytest.raises(ValueError, match="budget"):
            fuzzer.search("random", budget=0)
        with pytest.raises(ValueError, match="strategy"):
            fuzzer.search("annealing", budget=1)

    def test_frontier_entries_rerun_to_their_reported_score(self):
        # The acceptance contract: a frontier entry's repro command
        # re-scores to exactly the reported number.  Exercised through
        # the same API the CLI --score/--score-events paths call.
        result = ScenarioFuzzer(13, score_config=TINY_SCORE).search(
            "hill_climb", budget=3
        )
        top = result.frontier(top_k=1)[0]
        rerun = ScenarioFuzzer(13, score_config=TINY_SCORE).score_one(
            type(top)(
                name=top.name,
                events=top.events,
                origin="score",
                derivable=top.derivable,
            )
        )
        assert rerun.score == top.score


def test_merge_frontier_read_update_write(tmp_path):
    out = tmp_path / "BENCH_scenarios.json"
    out.write_text(
        json.dumps({"scenarios": {"sim-lustre-bursty": {"x": 1}}})
    )
    section = {"root_seed": 1, "top": []}
    merged = merge_frontier(out, section)
    assert merged["scenarios"] == {"sim-lustre-bursty": {"x": 1}}
    data = json.loads(out.read_text())
    assert data["fuzzed_frontier"] == section
    # Idempotent update: a second merge replaces, never duplicates.
    merge_frontier(out, {"root_seed": 2, "top": []})
    assert json.loads(out.read_text())["fuzzed_frontier"]["root_seed"] == 2


class TestCliValidation:
    @pytest.mark.parametrize(
        "argv",
        [
            ["fuzz-scenarios", "--budget", "0"],
            ["fuzz-scenarios", "--top", "0"],
            ["fuzz-scenarios", "--jobs", "0"],
            ["fuzz-scenarios", "--score", "not-a-fuzz-name"],
            ["fuzz-scenarios", "--score-events", "not json"],
            ["fuzz-scenarios", "--score-events", '{"no_events": 1}'],
            [
                "fuzz-scenarios",
                "--score",
                "fuzz-1-1",
                "--score-events",
                "[]",
            ],
        ],
    )
    def test_bad_flags_exit_2(self, argv, capsys):
        from repro.cli import main

        assert main(argv) == 2
        assert capsys.readouterr().err.strip()


@pytest.mark.slow
def test_cli_fuzz_scenarios_end_to_end(tmp_path, capsys):
    """Default-config CLI search: frontier printed, merged into the
    JSON artifact, and the top entry's repro command re-runs to its
    reported score in the same interpreter-independent way."""
    from repro.cli import main

    out = tmp_path / "BENCH_scenarios.json"
    out.write_text(json.dumps({"scenarios": {"keep": True}}))
    assert (
        main(
            [
                "fuzz-scenarios",
                "--budget",
                "2",
                "--seed",
                "7",
                "--strategy",
                "random",
                "--jobs",
                "2",
                "--out",
                str(out),
            ]
        )
        == 0
    )
    capsys.readouterr()
    data = json.loads(out.read_text())
    assert data["scenarios"] == {"keep": True}
    section = data["fuzzed_frontier"]
    assert section["root_seed"] == 7
    assert len(section["top"]) == 2
    top = section["top"][0]
    # Re-run the printed repro command (argv form) and compare scores.
    import shlex

    rerun_argv = shlex.split(top["repro"])
    assert rerun_argv[0] == "repro"
    assert main(rerun_argv[1:]) == 0
    row = json.loads(capsys.readouterr().out)
    assert row["tuner_vs_static_pct"] == top["tuner_vs_static_pct"]
    assert row["capes_tuned"] == top["capes_tuned"]
    assert row["events"] == top["events"]
