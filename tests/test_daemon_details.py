"""Focused tests for Interface Daemon internals not covered elsewhere."""

import numpy as np
import pytest

from repro.core import ActionChecker, ActionSpace, ControlAgent, InterfaceDaemon
from repro.core.actions import TunableParameter
from repro.cluster import Cluster, ClusterConfig
from repro.replaydb import ReplayDB
from repro.sim import Simulator
from repro.telemetry import DifferentialEncoder


def make_daemon(n_clients=2, fw=4, obs_ticks=3, extra_width=0, extra_provider=None):
    sim = Simulator()
    cluster = Cluster(sim, ClusterConfig(n_servers=1, n_clients=n_clients))
    db = ReplayDB(n_clients * fw + extra_width)
    space = ActionSpace(
        [TunableParameter("max_rpcs_in_flight", 1, 64, 1, 8)]
    )
    controls = [ControlAgent(c) for c in cluster.clients]
    daemon = InterfaceDaemon(
        n_clients=n_clients,
        client_frame_width=fw,
        db=db,
        action_space=space,
        control_agents=controls,
        obs_ticks=obs_ticks,
        extra_frame_width=extra_width,
        extra_frame_provider=extra_provider,
    )
    encoders = [DifferentialEncoder(fw) for _ in range(n_clients)]
    return daemon, encoders, cluster


def send_tick(daemon, encoders, tick, values=None, only=None):
    for cid, enc in enumerate(encoders):
        if only is not None and cid not in only:
            continue
        frame = np.full(enc.frame_width, float(tick if values is None else values))
        daemon.ingest(cid, enc.encode(tick, frame))


class TestFrameAssembly:
    def test_complete_tick_stored(self):
        daemon, encoders, _ = make_daemon()
        send_tick(daemon, encoders, 1)
        assert daemon.finish_tick(1)
        assert daemon.ticks_stored == 1
        assert daemon.db.cache.has(1)

    def test_incomplete_tick_dropped(self):
        daemon, encoders, _ = make_daemon()
        send_tick(daemon, encoders, 1, only={0})
        assert not daemon.finish_tick(1)
        assert daemon.ticks_incomplete == 1
        assert not daemon.db.cache.has(1)

    def test_stale_partial_assemblies_purged(self):
        daemon, encoders, _ = make_daemon()
        send_tick(daemon, encoders, 1, only={0})  # never completes
        send_tick(daemon, encoders, 2)
        assert daemon.finish_tick(2)
        # tick 1's orphan was discarded and counted
        assert daemon.ticks_incomplete == 1
        assert 1 not in daemon._pending

    def test_unknown_client_rejected(self):
        daemon, encoders, _ = make_daemon()
        msg = encoders[0].encode(1, np.zeros(4))
        with pytest.raises(KeyError):
            daemon.ingest(99, msg)

    def test_frame_order_is_client_order(self):
        daemon, encoders, _ = make_daemon()
        f0 = np.full(4, 10.0)
        f1 = np.full(4, 20.0)
        daemon.ingest(0, encoders[0].encode(1, f0))
        daemon.ingest(1, encoders[1].encode(1, f1))
        daemon.finish_tick(1)
        stored = daemon.db.cache.get(1).frame
        np.testing.assert_array_equal(stored[:4], f0)
        np.testing.assert_array_equal(stored[4:], f1)


class TestCurrentObservation:
    def test_none_before_any_tick(self):
        daemon, _enc, _ = make_daemon()
        assert daemon.current_observation() is None

    def test_padding_repeats_oldest_frame(self):
        daemon, encoders, _ = make_daemon(obs_ticks=4)
        send_tick(daemon, encoders, 1, values=7.0)
        daemon.finish_tick(1)
        obs = daemon.current_observation()
        frames = obs.reshape(4, -1)
        for row in frames:
            np.testing.assert_array_equal(row, np.full(8, 7.0))

    def test_window_slides(self):
        daemon, encoders, _ = make_daemon(obs_ticks=2)
        for t in (1, 2, 3):
            send_tick(daemon, encoders, t, values=float(t))
            daemon.finish_tick(t)
        frames = daemon.current_observation().reshape(2, -1)
        assert frames[0][0] == 2.0 and frames[1][0] == 3.0


class TestExtraFrames:
    def test_provider_columns_appended(self):
        provider_calls = []

        def provider(tick):
            provider_calls.append(tick)
            return np.array([99.0, 98.0])

        daemon, encoders, _ = make_daemon(extra_width=2, extra_provider=provider)
        send_tick(daemon, encoders, 1)
        daemon.finish_tick(1)
        stored = daemon.db.cache.get(1).frame
        np.testing.assert_array_equal(stored[-2:], [99.0, 98.0])
        assert provider_calls == [1]

    def test_provider_shape_checked(self):
        daemon, encoders, _ = make_daemon(
            extra_width=2, extra_provider=lambda t: np.zeros(3)
        )
        send_tick(daemon, encoders, 1)
        with pytest.raises(ValueError):
            daemon.finish_tick(1)

    def test_width_without_provider_rejected(self):
        with pytest.raises(ValueError):
            make_daemon(extra_width=2, extra_provider=None)


class TestActionPath:
    def test_clamped_noop_action_not_broadcast(self):
        daemon, _enc, cluster = make_daemon()
        cluster.set_max_rpcs_in_flight(64)  # already at the ceiling
        before = daemon.actions_broadcast
        effect = daemon.perform_action(1, 1)  # +1, clamps to 64
        assert daemon.actions_broadcast == before
        assert effect.new_value == effect.old_value == 64.0

    def test_applied_to_every_control_agent(self):
        daemon, _enc, cluster = make_daemon()
        daemon.perform_action(1, 2)  # decrease window
        for client in cluster.clients:
            assert client.max_rpcs_in_flight == 7

    def test_parameter_values_readback(self):
        daemon, _enc, _ = make_daemon()
        assert daemon.parameter_values() == {"max_rpcs_in_flight": 8.0}
