"""The documentation layer stays mechanically honest (docs/check_docs.py).

Runs the same checks as the CI docs job inside the fast suite, plus
unit coverage of the checker's own validators (a checker that accepts
anything enforces nothing).
"""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "docs"))

import check_docs  # noqa: E402


class TestRepositoryDocs:
    def test_all_checks_pass(self):
        errors = check_docs.run_checks()
        assert errors == []

    def test_api_index_is_current(self):
        assert (
            check_docs.check_api_index(
                check_docs.REPO / "docs" / "API.md"
            )
            == []
        )


class TestCheckerValidators:
    def test_mermaid_rejects_unknown_type(self, tmp_path):
        doc = tmp_path / "x.md"
        doc.write_text("```mermaid\nsketchDiagram\nA --> B\n```\n")
        assert any(
            "unknown diagram type" in e for e in check_docs.check_mermaid(doc)
        )

    def test_mermaid_rejects_unbalanced_brackets(self, tmp_path):
        doc = tmp_path / "x.md"
        doc.write_text("```mermaid\nflowchart LR\nA[broken --> B\n```\n")
        assert any(
            "unbalanced" in e for e in check_docs.check_mermaid(doc)
        )

    def test_mermaid_accepts_valid_flowchart(self, tmp_path):
        doc = tmp_path / "x.md"
        doc.write_text(
            "```mermaid\nflowchart LR\nA[Replay DB] --> B(DQN)\n```\n"
        )
        assert check_docs.check_mermaid(doc) == []

    def test_links_catch_missing_file(self, tmp_path):
        doc = tmp_path / "x.md"
        doc.write_text("see [other](nope.md)\n")
        assert any(
            "missing file" in e for e in check_docs.check_links(doc)
        )

    def test_links_catch_missing_anchor(self, tmp_path):
        other = tmp_path / "other.md"
        other.write_text("# Real Heading\n")
        doc = tmp_path / "x.md"
        doc.write_text("see [other](other.md#fake-heading)\n")
        assert any(
            "no heading" in e for e in check_docs.check_links(doc)
        )

    def test_links_resolve_anchor_with_slug(self, tmp_path):
        other = tmp_path / "other.md"
        other.write_text("## Where to add a new X\n")
        doc = tmp_path / "x.md"
        doc.write_text("see [x](other.md#where-to-add-a-new-x)\n")
        assert check_docs.check_links(doc) == []

    def test_links_inside_code_fences_ignored(self, tmp_path):
        doc = tmp_path / "x.md"
        doc.write_text("```python\nd = {}\nx = d['key'](arg)\n```\n")
        assert check_docs.check_links(doc) == []

    def test_snippets_catch_syntax_errors(self, tmp_path):
        doc = tmp_path / "x.md"
        doc.write_text("```python\ndef broken(:\n```\n")
        assert any(
            "snippet" in e for e in check_docs.check_snippets(doc)
        )

    def test_snippets_accept_valid_python(self, tmp_path):
        doc = tmp_path / "x.md"
        doc.write_text(
            "```python\nfrom repro.train import TrainerLoop\n```\n"
        )
        assert check_docs.check_snippets(doc) == []

    def test_docstring_coverage_enforced(self):
        # The audited packages are fully documented right now; the
        # checker must agree (a regression here means someone added an
        # undocumented public member).
        assert check_docs.check_docstrings() == []

    def test_stale_index_detected(self, tmp_path):
        api = tmp_path / "API.md"
        api.write_text(
            f"{check_docs.API_INDEX_BEGIN}\nold index\n"
            f"{check_docs.API_INDEX_END}\n"
        )
        assert any(
            "stale" in e for e in check_docs.check_api_index(api)
        )
