"""Tests for the policy interpretability probes."""

import numpy as np
import pytest

from repro.core.actions import ActionSpace, TunableParameter
from repro.rl import (
    DQNAgent,
    Hyperparameters,
    format_policy_table,
    policy_table,
    q_sensitivity,
)

HP = Hyperparameters(hidden_layer_size=8, sampling_ticks_per_observation=2)


def make_space():
    return ActionSpace(
        [TunableParameter("max_rpcs_in_flight", 1, 64, 1, 8)]
    )


def make_agent(obs_dim=10, n_actions=3):
    return DQNAgent(obs_dim=obs_dim, n_actions=n_actions, hp=HP, rng=0)


class TestPolicyTable:
    def test_rows_cover_requested_values(self):
        agent = make_agent()
        rows = policy_table(
            agent,
            make_space(),
            base_obs=np.zeros(10),
            parameter="max_rpcs_in_flight",
            feature_indices=[0, 5],
            feature_scale=16.0,
            values=[1, 8, 32],
        )
        assert [r.value for r in rows] == [1.0, 8.0, 32.0]
        for r in rows:
            assert 0 <= r.action < 3
            assert r.action_label in ("NULL", "max_rpcs_in_flight +1",
                                      "max_rpcs_in_flight -1")
            assert r.q_values.shape == (3,)

    def test_default_values_span_range(self):
        agent = make_agent()
        rows = policy_table(
            agent,
            make_space(),
            np.zeros(10),
            "max_rpcs_in_flight",
            [0],
            16.0,
        )
        vals = [r.value for r in rows]
        assert vals[0] == 1.0 and vals[-1] <= 64.0
        assert len(vals) >= 10

    def test_probe_writes_scaled_feature(self):
        """The probed feature must actually change the network input."""
        agent = make_agent()
        space = make_space()
        r_low = policy_table(
            agent, space, np.zeros(10), "max_rpcs_in_flight", [0], 16.0,
            values=[1],
        )[0]
        r_high = policy_table(
            agent, space, np.zeros(10), "max_rpcs_in_flight", [0], 16.0,
            values=[64],
        )[0]
        assert not np.allclose(r_low.q_values, r_high.q_values)

    def test_unknown_parameter(self):
        agent = make_agent()
        with pytest.raises(KeyError):
            policy_table(agent, make_space(), np.zeros(10), "nope", [0], 1.0)

    def test_bad_indices(self):
        agent = make_agent()
        with pytest.raises(ValueError):
            policy_table(
                agent, make_space(), np.zeros(10),
                "max_rpcs_in_flight", [99], 1.0,
            )
        with pytest.raises(ValueError):
            policy_table(
                agent, make_space(), np.zeros(10),
                "max_rpcs_in_flight", [], 1.0,
            )

    def test_format(self):
        agent = make_agent()
        rows = policy_table(
            agent, make_space(), np.zeros(10),
            "max_rpcs_in_flight", [0], 16.0, values=[4, 8],
        )
        text = format_policy_table(rows, "max_rpcs_in_flight")
        assert "greedy action" in text
        assert text.count("\n") == 2


class TestQSensitivity:
    def test_shape_and_nonnegative(self):
        agent = make_agent()
        obs = np.random.default_rng(0).normal(size=(16, 10))
        sal = q_sensitivity(agent, obs)
        assert sal.shape == (10,)
        assert (sal >= 0).all()

    def test_single_observation_accepted(self):
        agent = make_agent()
        sal = q_sensitivity(agent, np.zeros(10))
        assert sal.shape == (10,)

    def test_does_not_leak_gradients(self):
        agent = make_agent()
        q_sensitivity(agent, np.ones((4, 10)))
        for p in agent.online.net.parameters():
            np.testing.assert_array_equal(p.grad, 0.0)

    def test_width_mismatch_rejected(self):
        agent = make_agent()
        with pytest.raises(ValueError):
            q_sensitivity(agent, np.zeros((2, 7)))

    def test_irrelevant_feature_has_zero_saliency(self):
        """A feature whose first-layer weights are zeroed cannot matter."""
        agent = make_agent()
        first_dense = agent.online.net._dense[0]
        first_dense.W.value[3, :] = 0.0
        sal = q_sensitivity(agent, np.random.default_rng(1).normal(size=(8, 10)))
        assert sal[3] == pytest.approx(0.0, abs=1e-12)
