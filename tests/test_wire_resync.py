"""Wire-protocol lifecycle: resync messages, desync detection, pools.

The §3.3 protocol is stateful per sender, so a long-lived daemon needs
three guarantees the original encoder/decoder pair did not give:

- an explicit **full-frame resync message** that re-establishes decoder
  state from any starting point (``encode_full``);
- a loud failure (:class:`WireDesyncError`) when a *partial*
  differential message hits a decoder with no previous-frame state —
  the stale-encoder reconnect, which previously decoded garbage
  against zeros;
- per-sender decoder lifecycle (:class:`DecoderPool`): created on
  first use, evicted on disconnect, stats foldable before eviction.

The hypothesis test at the bottom drives random drop/reconnect
sequences through an encoder/pool pair and asserts the client-visible
contract: every frame that decodes, decodes *correctly*, and every
stale-encoder resume raises rather than desynchronising silently.
"""

import numpy as np
import pytest

from repro.telemetry.wire import (
    FULL_FRAME,
    DecoderPool,
    DifferentialDecoder,
    DifferentialEncoder,
    WireDesyncError,
)

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

W = 7


def _frames(rng, n, width=W):
    frames = rng.normal(size=(n, width))
    # Real PI frames change sparsely; zero some columns per tick.
    frames[:, :: 2] = np.round(frames[:, ::2])
    return frames


class TestEncodeFull:
    def test_round_trips_from_scratch(self):
        rng = np.random.default_rng(0)
        enc, dec = DifferentialEncoder(W), DifferentialDecoder(W)
        frame = rng.normal(size=W)
        tick, out = dec.decode(enc.encode_full(5, frame))
        assert tick == 5
        np.testing.assert_allclose(out, frame.astype(np.float32))
        assert dec.synchronized

    def test_reestablishes_state_mid_stream(self):
        rng = np.random.default_rng(1)
        enc = DifferentialEncoder(W)
        frames = _frames(rng, 4)
        enc.encode(0, frames[0])
        enc.encode(1, frames[1])
        # A decoder that saw nothing: the full frame is self-contained,
        # and subsequent differentials patch onto it correctly.
        dec = DifferentialDecoder(W)
        _, out = dec.decode(enc.encode_full(2, frames[2]))
        np.testing.assert_allclose(out, frames[2].astype(np.float32))
        _, out = dec.decode(enc.encode(3, frames[3]))
        np.testing.assert_allclose(out, frames[3].astype(np.float32))

    def test_refreshes_encoder_mirror(self):
        """After encode_full the next differential diffs against it."""
        rng = np.random.default_rng(2)
        enc = DifferentialEncoder(W)
        frame = rng.normal(size=W)
        enc.encode(0, frame)
        enc.encode_full(1, frame)
        dec = DifferentialDecoder(W)
        dec.decode(enc.encode_full(2, frame))
        # Identical frame → the differential should carry zero entries.
        before = enc.stats.entries_sent
        _, out = dec.decode(enc.encode(3, frame))
        assert enc.stats.entries_sent == before
        np.testing.assert_allclose(out, frame.astype(np.float32))

    def test_width_capped_below_sentinel(self):
        with pytest.raises(ValueError, match="frame_width"):
            DifferentialEncoder(FULL_FRAME)
        with pytest.raises(ValueError, match="frame_width"):
            DifferentialDecoder(FULL_FRAME + 7)


class TestDesyncDetection:
    def test_partial_differential_without_state_raises(self):
        enc = DifferentialEncoder(W)
        first = np.arange(W, dtype=float)
        second = first.copy()
        second[3] += 1.0  # sparse change: a genuinely partial diff
        enc.encode(0, first)  # establishes the *encoder's* mirror
        msg = enc.encode(1, second)  # partial differential
        fresh = DifferentialDecoder(W)
        with pytest.raises(WireDesyncError):
            fresh.decode(msg)
        # The error is sticky-safe: state stays unestablished.
        assert not fresh.synchronized

    def test_all_indicator_differential_establishes_state(self):
        """A first message covering every index is self-contained."""
        enc = DifferentialEncoder(W)
        frame = np.arange(W, dtype=float)
        msg = enc.encode(0, frame)  # first encode covers all indices
        dec = DifferentialDecoder(W)
        tick, out = dec.decode(msg)
        assert tick == 0 and dec.synchronized
        np.testing.assert_allclose(out, frame)

    def test_desync_error_is_value_error(self):
        """Callers catching ValueError for malformed input still work."""
        assert issubclass(WireDesyncError, ValueError)


class TestDecoderPool:
    def test_create_on_first_use_and_evict(self):
        pool = DecoderPool(W)
        enc = DifferentialEncoder(W)
        frame = np.ones(W)
        assert "a" not in pool and len(pool) == 0
        tick, out = pool.decode("a", enc.encode(0, frame))
        assert tick == 0 and "a" in pool and len(pool) == 1
        assert pool.evict("a") is True
        assert "a" not in pool and len(pool) == 0
        assert pool.evictions == 1
        assert pool.evict("a") is False  # idempotent, not double-counted
        assert pool.evictions == 1

    def test_streams_are_independent(self):
        pool = DecoderPool(W)
        enc_a, enc_b = DifferentialEncoder(W), DifferentialEncoder(W)
        fa, fb = np.full(W, 2.0), np.full(W, 9.0)
        pool.decode("a", enc_a.encode(0, fa))
        pool.decode("b", enc_b.encode(0, fb))
        _, out_a = pool.decode("a", enc_a.encode(1, fa))
        _, out_b = pool.decode("b", enc_b.encode(1, fb))
        np.testing.assert_allclose(out_a, fa)
        np.testing.assert_allclose(out_b, fb)

    def test_reconnect_after_eviction_needs_resync(self):
        """The server-restart bug this PR exists to prevent."""
        pool = DecoderPool(W)
        enc = DifferentialEncoder(W)
        base = np.arange(W, dtype=float)
        frames = [base.copy(), base.copy(), base.copy()]
        frames[1][2] += 1.0  # sparse change: a genuinely partial diff
        frames[2][5] += 1.0
        pool.decode("a", enc.encode(0, frames[0]))
        pool.evict("a")  # the disconnect
        # The sender kept its encoder: its next differential is partial.
        msg = enc.encode(1, frames[1])
        with pytest.raises(WireDesyncError):
            pool.decode("a", msg)
        # Recovery: the sender responds with an explicit full frame.
        _, out = pool.decode("a", enc.encode_full(1, frames[1]))
        np.testing.assert_allclose(out, frames[1].astype(np.float32))
        _, out = pool.decode("a", enc.encode(2, frames[2]))
        np.testing.assert_allclose(out, frames[2].astype(np.float32))

    def test_stats_visible_until_eviction(self):
        pool = DecoderPool(W)
        enc = DifferentialEncoder(W)
        pool.decode("a", enc.encode(0, np.ones(W)))
        stats = pool.stats("a")
        assert stats is not None and stats.messages == 1
        assert stats.compressed_bytes > 0
        pool.evict("a")
        assert pool.stats("a") is None


# -- drop/reconnect property test -------------------------------------------

#: One sender's life as the server sees it: "frame" = deliver the next
#: differential; "drop" = server evicts (client keeps its encoder);
#: "reconnect" = client resets its encoder before the next frame.
_EVENTS = st.lists(
    st.sampled_from(["frame", "drop", "reconnect"]),
    min_size=1,
    max_size=40,
)


@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(events=_EVENTS, seed=st.integers(0, 2**31 - 1))
def test_drop_reconnect_sequences_never_decode_garbage(events, seed):
    """Whatever the churn order, decoded frames are always correct.

    After a server-side drop, a stale encoder's partial differentials
    must raise :class:`WireDesyncError` until the client performs the
    resync handshake (here: ``encode_full`` on the next frame, which is
    what :class:`repro.serve.client.ServeClient` does on RESYNC); a
    client-side reconnect (fresh encoder) is self-synchronising because
    its first message covers every indicator.
    """
    rng = np.random.default_rng(seed)
    pool = DecoderPool(W)
    enc = DifferentialEncoder(W)
    tick = 0
    for event in events:
        if event == "drop":
            pool.evict("c")
        elif event == "reconnect":
            enc.reset()
        else:
            frame = np.round(rng.normal(size=W), 2)
            tick += 1
            try:
                got_tick, out = pool.decode("c", enc.encode(tick, frame))
            except WireDesyncError:
                # The serve RESYNC path: same tick, resent in full.
                got_tick, out = pool.decode(
                    "c", enc.encode_full(tick, frame)
                )
            assert got_tick == tick
            np.testing.assert_allclose(out, frame.astype(np.float32))
