"""Tests for workload generators and the schedule."""

import numpy as np
import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.sim import Simulator
from repro.util.units import KiB, MiB
from repro.workloads import (
    FileServer,
    RandomReadWrite,
    SequentialWrite,
    WorkloadPhase,
    WorkloadSchedule,
)


def build(n_servers=2, n_clients=2):
    sim = Simulator()
    cluster = Cluster(sim, ClusterConfig(n_servers=n_servers, n_clients=n_clients))
    return sim, cluster


class TestRandomReadWrite:
    def test_ratio_reflected_in_ops(self):
        sim, cluster = build()
        wl = RandomReadWrite(
            cluster, read_fraction=0.9, io_size=32 * KiB, instances_per_client=3, seed=0
        )
        wl.start()
        sim.run(until=20.0)
        total = wl.stats.reads + wl.stats.writes
        assert total > 50
        assert wl.stats.reads / total == pytest.approx(0.9, abs=0.08)

    def test_write_only(self):
        sim, cluster = build()
        wl = RandomReadWrite(cluster, read_fraction=0.0, seed=0)
        wl.start()
        sim.run(until=5.0)
        assert wl.stats.reads == 0 and wl.stats.writes > 0

    def test_from_ratio(self):
        sim, cluster = build()
        wl = RandomReadWrite.from_ratio(cluster, 1, 9)
        assert wl.read_fraction == pytest.approx(0.1)
        assert wl.name == "random_rw_1to9"

    def test_bad_ratio(self):
        sim, cluster = build()
        with pytest.raises(ValueError):
            RandomReadWrite.from_ratio(cluster, 0, 0)
        with pytest.raises(ValueError):
            RandomReadWrite(cluster, read_fraction=1.5)

    def test_offsets_are_io_aligned_and_in_file(self):
        sim, cluster = build()
        wl = RandomReadWrite(
            cluster,
            read_fraction=0.5,
            io_size=64 * KiB,
            file_size=MiB,
            instances_per_client=1,
            seed=1,
        )
        wl.start()
        sim.run(until=5.0)
        assert wl.stats.ops > 0

    def test_deterministic_with_seed(self):
        def run(seed):
            sim, cluster = build()
            wl = RandomReadWrite(cluster, read_fraction=0.3, seed=seed)
            wl.start()
            sim.run(until=10.0)
            return (wl.stats.reads, wl.stats.writes, cluster.total_bytes())

        assert run(5) == run(5)
        assert run(5) != run(6)

    def test_stop_interrupts_instances(self):
        sim, cluster = build()
        wl = RandomReadWrite(cluster, read_fraction=0.5, seed=0)
        wl.start()
        sim.run(until=2.0)
        wl.stop()
        ops_at_stop = wl.stats.ops
        sim.run(until=10.0)
        # a few in-flight ops may land, but the loops are gone
        assert wl.stats.ops <= ops_at_stop + wl.total_instances

    def test_double_start_rejected(self):
        sim, cluster = build()
        wl = RandomReadWrite(cluster, read_fraction=0.5)
        wl.start()
        with pytest.raises(RuntimeError):
            wl.start()


class TestFileServer:
    def test_op_mix_has_all_kinds(self):
        sim, cluster = build()
        wl = FileServer(
            cluster,
            file_size=256 * KiB,
            io_size=64 * KiB,
            instances_per_client=4,
            seed=0,
        )
        wl.start()
        sim.run(until=60.0)
        assert wl.stats.reads > 0
        assert wl.stats.writes > 0
        assert wl.stats.metas > 0
        # cycle: ~2 writes, 1 read, 3 metas
        assert wl.stats.metas == pytest.approx(1.5 * wl.stats.writes, rel=0.5)

    def test_append_sizes_vary(self):
        sim, cluster = build()
        wl = FileServer(
            cluster, file_size=128 * KiB, io_size=64 * KiB, instances_per_client=2, seed=3
        )
        wl.start()
        sim.run(until=120.0)
        # appends are exponential around file_size: byte count must exceed
        # the fixed create-write volume alone
        assert wl.stats.bytes_written > wl.stats.writes // 2 * 128 * KiB

    def test_io_size_larger_than_file_rejected(self):
        sim, cluster = build()
        with pytest.raises(ValueError):
            FileServer(cluster, file_size=KiB, io_size=MiB)


class TestSequentialWrite:
    def test_streams_progress_sequentially(self):
        sim, cluster = build()
        wl = SequentialWrite(
            cluster, record_size=256 * KiB, instances_per_client=2, seed=0
        )
        wl.start()
        sim.run(until=20.0)
        assert wl.stats.writes > 10
        assert wl.stats.reads == 0
        assert wl.stats.bytes_written == wl.stats.writes * 256 * KiB

    def test_wraps_at_extent(self):
        sim, cluster = build()
        wl = SequentialWrite(
            cluster,
            record_size=128 * KiB,
            stream_extent=256 * KiB,
            instances_per_client=1,
            seed=0,
        )
        wl.start()
        sim.run(until=30.0)
        # two records per lap; wrapping means many laps completed fine
        assert wl.stats.writes > 4

    def test_bad_sizes(self):
        sim, cluster = build()
        with pytest.raises(ValueError):
            SequentialWrite(cluster, record_size=MiB, stream_extent=KiB)


class TestSchedule:
    def test_phases_run_in_order_and_notify(self):
        sim, cluster = build()
        a = RandomReadWrite(cluster, read_fraction=1.0, seed=0)
        b = RandomReadWrite(cluster, read_fraction=0.0, seed=0)
        sched = WorkloadSchedule(
            sim, [WorkloadPhase(a, 5.0), WorkloadPhase(b, 5.0)]
        )
        seen = []
        sched.on_phase_change(lambda ph: seen.append((sim.now, ph.workload)))
        sched.start()
        sim.run(until=12.0)
        assert [w for _, w in seen] == [a, b]
        assert [t for t, _ in seen] == [0.0, 5.0]
        assert a.stats.reads > 0 and b.stats.writes > 0

    def test_loop_repeats(self):
        sim, cluster = build()
        a = RandomReadWrite(cluster, read_fraction=0.5, seed=0)
        sched = WorkloadSchedule(sim, [WorkloadPhase(a, 2.0)], loop=True)
        count = []
        sched.on_phase_change(lambda ph: count.append(sim.now))
        sched.start()
        sim.run(until=7.0)
        assert len(count) >= 3

    def test_empty_schedule_rejected(self):
        sim, _ = build()
        with pytest.raises(ValueError):
            WorkloadSchedule(sim, [])

    def test_bad_duration(self):
        sim, cluster = build()
        a = RandomReadWrite(cluster, read_fraction=0.5)
        with pytest.raises(ValueError):
            WorkloadPhase(a, 0.0)

    def test_double_start_rejected(self):
        sim, cluster = build()
        a = RandomReadWrite(cluster, read_fraction=0.5)
        sched = WorkloadSchedule(sim, [WorkloadPhase(a, 1.0)])
        sched.start()
        with pytest.raises(RuntimeError):
            sched.start()
