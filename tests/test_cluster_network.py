"""Tests for the network fabric (repro.cluster.network)."""

import pytest

from repro.cluster.network import Fabric, Link
from repro.sim import Simulator
from repro.util.units import MiB, mb_per_s


class TestLink:
    def test_serialization_delay(self):
        sim = Simulator()
        link = Link(sim, bandwidth=mb_per_s(100))
        done = link.reserve(MiB)
        assert done == pytest.approx(0.01)

    def test_fifo_queueing(self):
        sim = Simulator()
        link = Link(sim, bandwidth=mb_per_s(100))
        first = link.reserve(MiB)
        second = link.reserve(MiB)
        assert second == pytest.approx(first + 0.01)
        assert link.stats.queue_delay == pytest.approx(0.01)

    def test_idle_gap_resets_queue(self):
        sim = Simulator()
        link = Link(sim, bandwidth=mb_per_s(100))
        link.reserve(MiB)
        sim.timeout(1.0)
        sim.run()
        done = link.reserve(MiB)
        assert done == pytest.approx(1.01)

    def test_queue_depth_seconds(self):
        sim = Simulator()
        link = Link(sim, bandwidth=mb_per_s(1))
        assert link.queue_depth_seconds == 0.0
        link.reserve(2 * MiB)
        assert link.queue_depth_seconds == pytest.approx(2.0)

    def test_stats(self):
        sim = Simulator()
        link = Link(sim, bandwidth=mb_per_s(100))
        link.reserve(MiB)
        link.reserve(MiB)
        assert link.stats.messages == 2
        assert link.stats.bytes == 2 * MiB

    def test_zero_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            Link(Simulator(), bandwidth=0)


class TestFabric:
    def make(self):
        sim = Simulator()
        fab = Fabric(sim, nic_mbps=100.0, latency_s=0.001)
        fab.register("a")
        fab.register("b")
        return sim, fab

    def test_delivery_time_includes_both_serializations(self):
        sim, fab = self.make()
        got = []
        fab.send("a", "b", MiB, "payload").add_callback(
            lambda e: got.append((sim.now, e.value))
        )
        sim.run()
        # 0.01 egress + 0.001 latency + 0.01 ingress
        assert got[0][0] == pytest.approx(0.021)
        assert got[0][1] == "payload"

    def test_incast_contention_at_receiver(self):
        """Two senders to one receiver serialize at the ingress link."""
        sim = Simulator()
        fab = Fabric(sim, nic_mbps=100.0, latency_s=0.0)
        for n in ("a", "b", "dst"):
            fab.register(n)
        times = []
        fab.send("a", "dst", MiB, 1).add_callback(lambda e: times.append(sim.now))
        fab.send("b", "dst", MiB, 2).add_callback(lambda e: times.append(sim.now))
        sim.run()
        assert times[0] == pytest.approx(0.02)
        assert times[1] == pytest.approx(0.03)  # waited behind the first

    def test_distinct_receivers_do_not_contend(self):
        sim = Simulator()
        fab = Fabric(sim, nic_mbps=100.0, latency_s=0.0)
        for n in ("a", "b1", "b2"):
            fab.register(n)
        times = []
        fab.send("a", "b1", MiB, 1).add_callback(lambda e: times.append(sim.now))
        fab.send("a", "b2", MiB, 2).add_callback(lambda e: times.append(sim.now))
        sim.run()
        # Egress serializes (0.01 each), ingress links are independent.
        assert times == [pytest.approx(0.02), pytest.approx(0.03)]

    def test_unregistered_nodes_rejected(self):
        sim, fab = self.make()
        with pytest.raises(KeyError):
            fab.send("nope", "b", 1, None)
        with pytest.raises(KeyError):
            fab.send("a", "nope", 1, None)

    def test_double_registration_rejected(self):
        sim, fab = self.make()
        with pytest.raises(ValueError):
            fab.register("a")

    def test_ping_rtt_reflects_backlog(self):
        sim, fab = self.make()
        idle = fab.ping_rtt_estimate("a", "b")
        fab.send("a", "b", 10 * MiB, None)
        busy = fab.ping_rtt_estimate("a", "b")
        assert busy > idle

    def test_message_order_preserved_per_pair(self):
        sim, fab = self.make()
        got = []
        for i in range(5):
            fab.send("a", "b", 1000, i).add_callback(lambda e: got.append(e.value))
        sim.run()
        assert got == [0, 1, 2, 3, 4]
