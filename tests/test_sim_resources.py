"""Tests for Resource, Store, TokenBucket (repro.sim.resources)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim import Resource, Simulator, SimulationError, Store, Timeout, TokenBucket


class TestResource:
    def test_acquire_within_capacity_is_immediate(self):
        sim = Simulator()
        res = Resource(sim, capacity=2)
        log = []

        def proc(name):
            yield res.acquire()
            log.append((sim.now, name))

        sim.spawn(proc("a"))
        sim.spawn(proc("b"))
        sim.run()
        assert [n for _, n in log] == ["a", "b"]
        assert res.in_use == 2

    def test_waiter_blocks_until_release(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        log = []

        def holder():
            yield res.acquire()
            yield Timeout(5.0)
            res.release()

        def waiter():
            yield Timeout(1.0)
            yield res.acquire()
            log.append(sim.now)
            res.release()

        sim.spawn(holder())
        sim.spawn(waiter())
        sim.run()
        assert log == [5.0]

    def test_fifo_ordering(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        order = []

        def holder():
            yield res.acquire()
            yield Timeout(10.0)
            res.release()

        def waiter(name, arrive):
            yield Timeout(arrive)
            yield res.acquire()
            order.append(name)
            res.release()

        sim.spawn(holder())
        sim.spawn(waiter("first", 1.0))
        sim.spawn(waiter("second", 2.0))
        sim.run()
        assert order == ["first", "second"]

    def test_release_without_acquire_raises(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        with pytest.raises(SimulationError):
            res.release()

    def test_capacity_growth_wakes_waiters(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        woken = []

        def holder():
            yield res.acquire()
            yield Timeout(100.0)
            res.release()

        def waiter():
            yield res.acquire()
            woken.append(sim.now)

        sim.spawn(holder())
        sim.spawn(waiter())

        def grow():
            yield Timeout(2.0)
            res.set_capacity(2)

        sim.spawn(grow())
        sim.run()
        assert woken == [2.0]

    def test_capacity_shrink_is_lazy(self):
        sim = Simulator()
        res = Resource(sim, capacity=2)

        def holder():
            yield res.acquire()
            yield Timeout(10.0)
            res.release()

        sim.spawn(holder())
        sim.spawn(holder())
        sim.run(until=1.0)
        res.set_capacity(1)
        # Both slots stay held (no revocation)...
        assert res.in_use == 2
        sim.run()
        # ...but releases bring usage under the new cap.
        assert res.in_use == 0
        assert res.capacity == 1

    def test_queued_counter(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)

        def holder():
            yield res.acquire()
            yield Timeout(10.0)
            res.release()

        def waiter():
            yield res.acquire()
            res.release()

        sim.spawn(holder())
        sim.spawn(waiter())
        sim.run(until=1.0)
        assert res.queued == 1

    def test_invalid_capacity(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Resource(sim, capacity=0)


class TestStore:
    def test_put_then_get(self):
        sim = Simulator()
        store = Store(sim)
        store.put("x")
        got = []

        def getter():
            item = yield store.get()
            got.append(item)

        sim.spawn(getter())
        sim.run()
        assert got == ["x"]

    def test_get_blocks_until_put(self):
        sim = Simulator()
        store = Store(sim)
        got = []

        def getter():
            item = yield store.get()
            got.append((sim.now, item))

        def putter():
            yield Timeout(3.0)
            store.put("late")

        sim.spawn(getter())
        sim.spawn(putter())
        sim.run()
        assert got == [(3.0, "late")]

    def test_fifo_items(self):
        sim = Simulator()
        store = Store(sim)
        for x in (1, 2, 3):
            store.put(x)
        got = []

        def getter():
            for _ in range(3):
                got.append((yield store.get()))

        sim.spawn(getter())
        sim.run()
        assert got == [1, 2, 3]

    def test_peek_and_drain(self):
        sim = Simulator()
        store = Store(sim)
        store.put("a")
        store.put("b")
        assert store.peek_all() == ("a", "b")
        assert len(store) == 2
        assert store.drain() == ("a", "b")
        assert len(store) == 0


class TestTokenBucket:
    def test_initial_burst_is_free(self):
        sim = Simulator()
        tb = TokenBucket(sim, rate=10.0, capacity=5.0)
        times = []

        def proc():
            for _ in range(5):
                yield tb.acquire(1.0)
                times.append(sim.now)

        sim.spawn(proc())
        sim.run()
        assert times == [0.0] * 5

    def test_rate_limits_after_burst(self):
        sim = Simulator()
        tb = TokenBucket(sim, rate=2.0, capacity=1.0)  # 2 tokens/s, burst 1
        times = []

        def proc():
            for _ in range(4):
                yield tb.acquire(1.0)
                times.append(sim.now)

        sim.spawn(proc())
        sim.run()
        assert times == pytest.approx([0.0, 0.5, 1.0, 1.5])

    def test_set_rate_speeds_up_waiters(self):
        sim = Simulator()
        tb = TokenBucket(sim, rate=1.0, capacity=1.0)
        times = []

        def proc():
            yield tb.acquire(1.0)  # drains the burst
            yield tb.acquire(1.0)  # would complete at t=1.0 at rate 1
            times.append(sim.now)

        sim.spawn(proc())

        def tuner():
            yield Timeout(0.25)
            tb.set_rate(100.0)

        sim.spawn(tuner())
        sim.run()
        # 0.25 tokens accrued by t=0.25, remaining 0.75 at rate 100
        assert times[0] == pytest.approx(0.2575, abs=1e-6)

    def test_acquire_more_than_capacity_rejected(self):
        sim = Simulator()
        tb = TokenBucket(sim, rate=1.0, capacity=2.0)
        with pytest.raises(ValueError):
            tb.acquire(3.0)

    def test_acquire_nonpositive_rejected(self):
        sim = Simulator()
        tb = TokenBucket(sim, rate=1.0)
        with pytest.raises(ValueError):
            tb.acquire(0.0)

    def test_fifo_no_starvation(self):
        sim = Simulator()
        tb = TokenBucket(sim, rate=1.0, capacity=4.0)
        order = []

        def big():
            yield Timeout(0.0)
            yield tb.acquire(4.0)
            order.append("big")

        def small():
            yield Timeout(0.1)
            yield tb.acquire(0.5)
            order.append("small")

        # Drain bucket first so both must wait.
        def drain():
            yield tb.acquire(4.0)

        sim.spawn(drain())
        sim.spawn(big())
        sim.spawn(small())
        sim.run()
        assert order == ["big", "small"]

    def test_tokens_capped_at_capacity(self):
        sim = Simulator()
        tb = TokenBucket(sim, rate=100.0, capacity=3.0)
        sim.timeout(10.0)
        sim.run()
        assert tb.tokens == pytest.approx(3.0)


@given(
    rate=st.floats(min_value=0.5, max_value=50),
    n_requests=st.integers(min_value=1, max_value=20),
)
def test_token_bucket_never_exceeds_long_run_rate(rate, n_requests):
    """Property: k acquisitions of 1 token finish no earlier than
    (k - capacity)/rate — the bucket can never over-issue."""
    sim = Simulator()
    capacity = 2.0
    tb = TokenBucket(sim, rate=rate, capacity=capacity)
    times = []

    def proc():
        for _ in range(n_requests):
            yield tb.acquire(1.0)
            times.append(sim.now)

    sim.spawn(proc())
    sim.run()
    for k, t in enumerate(times, start=1):
        lower_bound = max(0.0, (k - capacity) / rate)
        assert t >= lower_bound - 1e-9
