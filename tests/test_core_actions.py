"""Tests for tunable parameters, action space, checker, control agents."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cluster import Cluster, ClusterConfig
from repro.core import ActionChecker, ActionSpace, ControlAgent, TunableParameter
from repro.core.actions import lustre_parameters
from repro.sim import Simulator


def two_params():
    return [
        TunableParameter("alpha", low=0, high=10, step=1, default=5),
        TunableParameter("beta", low=0, high=100, step=10, default=50),
    ]


class TestTunableParameter:
    def test_clamp(self):
        p = TunableParameter("x", 1, 9, 1, 5)
        assert p.clamp(0) == 1
        assert p.clamp(100) == 9
        assert p.clamp(4) == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            TunableParameter("x", 5, 5, 1, 5)
        with pytest.raises(ValueError):
            TunableParameter("x", 1, 9, 0, 5)
        with pytest.raises(ValueError):
            TunableParameter("x", 1, 9, 1, 50)

    def test_lustre_parameters(self):
        params = lustre_parameters()
        names = [p.name for p in params]
        assert names == ["max_rpcs_in_flight", "io_rate_limit"]


class TestActionSpace:
    def test_size_is_2p_plus_1(self):
        assert ActionSpace(two_params()).n_actions == 5
        assert ActionSpace(two_params()[:1]).n_actions == 3

    def test_decode_null(self):
        s = ActionSpace(two_params())
        param, direction = s.decode(0)
        assert param is None and direction == 0

    def test_decode_layout(self):
        s = ActionSpace(two_params())
        assert s.decode(1)[0].name == "alpha" and s.decode(1)[1] == +1
        assert s.decode(2)[0].name == "alpha" and s.decode(2)[1] == -1
        assert s.decode(3)[0].name == "beta" and s.decode(3)[1] == +1
        assert s.decode(4)[0].name == "beta" and s.decode(4)[1] == -1

    def test_decode_out_of_range(self):
        s = ActionSpace(two_params())
        with pytest.raises(ValueError):
            s.decode(5)
        with pytest.raises(ValueError):
            s.decode(-1)

    def test_describe(self):
        s = ActionSpace(two_params())
        assert s.describe(0) == "NULL"
        assert s.describe(1) == "alpha +1"
        assert s.describe(4) == "beta -10"

    def test_apply_and_clamp(self):
        s = ActionSpace(two_params())
        values = {"alpha": 10.0, "beta": 50.0}
        eff = s.apply(1, values.get, values.__setitem__)  # alpha + 1, at max
        assert values["alpha"] == 10.0  # clamped, unchanged
        assert eff.new_value == 10.0
        eff = s.apply(2, values.get, values.__setitem__)
        assert values["alpha"] == 9.0
        assert eff.old_value == 10.0 and eff.new_value == 9.0

    def test_null_apply_changes_nothing(self):
        s = ActionSpace(two_params())
        values = {"alpha": 5.0, "beta": 50.0}
        eff = s.apply(0, values.get, values.__setitem__)
        assert eff.is_null
        assert values == {"alpha": 5.0, "beta": 50.0}

    def test_duplicate_names_rejected(self):
        p = two_params()[0]
        with pytest.raises(ValueError):
            ActionSpace([p, p])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ActionSpace([])

    def test_defaults(self):
        assert ActionSpace(two_params()).defaults() == {"alpha": 5, "beta": 50}

    @given(actions=st.lists(st.integers(min_value=0, max_value=4), max_size=60))
    def test_values_always_in_range(self, actions):
        """Property: any action sequence keeps values within bounds."""
        s = ActionSpace(two_params())
        values = dict(s.defaults())
        for a in actions:
            s.apply(a, values.get, values.__setitem__)
        assert 0 <= values["alpha"] <= 10
        assert 0 <= values["beta"] <= 100

    @given(a=st.integers(min_value=1, max_value=4))
    def test_inverse_actions_cancel(self, a):
        """Property: inc then dec (or vice versa) restores mid-range value."""
        s = ActionSpace(two_params())
        values = dict(s.defaults())
        inverse = a + 1 if a % 2 == 1 else a - 1
        before = dict(values)
        s.apply(a, values.get, values.__setitem__)
        s.apply(inverse, values.get, values.__setitem__)
        assert values == before


class TestActionChecker:
    def test_no_rules_accepts_everything(self):
        s = ActionSpace(two_params())
        c = ActionChecker()
        values = dict(s.defaults())
        assert c.filter(s, 1, values.get) == 1

    def test_minimum_rule_vetoes(self):
        s = ActionSpace(two_params())
        c = ActionChecker()
        c.add_minimum("alpha", 5)
        values = dict(s.defaults())  # alpha = 5
        # decreasing alpha to 4 violates the floor -> NULL
        assert c.filter(s, 2, values.get) == ActionSpace.NULL_ACTION
        assert c.vetoes == 1
        # increasing is fine
        assert c.filter(s, 1, values.get) == 1

    def test_maximum_rule(self):
        s = ActionSpace(two_params())
        c = ActionChecker()
        c.add_maximum("beta", 50)
        values = dict(s.defaults())
        assert c.filter(s, 3, values.get) == ActionSpace.NULL_ACTION

    def test_rules_scoped_to_parameter(self):
        s = ActionSpace(two_params())
        c = ActionChecker()
        c.add_minimum("alpha", 9)
        values = dict(s.defaults())
        # beta actions unaffected by alpha's rule
        assert c.filter(s, 4, values.get) == 4

    def test_null_always_passes(self):
        s = ActionSpace(two_params())
        c = ActionChecker()
        c.add_rule(lambda name, value: False)
        values = dict(s.defaults())
        assert c.filter(s, 0, values.get) == 0


class TestControlAgent:
    def test_applies_to_client(self):
        sim = Simulator()
        cluster = Cluster(sim, ClusterConfig(n_servers=1, n_clients=1))
        agent = ControlAgent(cluster.clients[0])
        agent.apply("max_rpcs_in_flight", 3)
        assert cluster.clients[0].max_rpcs_in_flight == 3
        agent.apply("io_rate_limit", 222.0)
        assert cluster.clients[0].io_rate_limit == 222.0
        assert agent.applied == [("max_rpcs_in_flight", 3.0), ("io_rate_limit", 222.0)]

    def test_current_readback(self):
        sim = Simulator()
        cluster = Cluster(sim, ClusterConfig(n_servers=1, n_clients=1))
        agent = ControlAgent(cluster.clients[0])
        assert agent.current("max_rpcs_in_flight") == 8.0

    def test_unknown_parameter(self):
        sim = Simulator()
        cluster = Cluster(sim, ClusterConfig(n_servers=1, n_clients=1))
        agent = ControlAgent(cluster.clients[0])
        with pytest.raises(KeyError):
            agent.apply("nope", 1)
        with pytest.raises(KeyError):
            agent.current("nope")

    def test_supported_parameters(self):
        sim = Simulator()
        cluster = Cluster(sim, ClusterConfig(n_servers=1, n_clients=1))
        agent = ControlAgent(cluster.clients[0])
        assert agent.supported_parameters() == [
            "io_rate_limit",
            "max_rpcs_in_flight",
        ]
