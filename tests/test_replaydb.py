"""Tests for the replay database: cache, SQLite store, Algorithm 1."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.replaydb import MinibatchSampler, ReplayCache, ReplayDB, TickRecord
from repro.replaydb.sampler import SamplerStarvedError


def fill_db(db, n_ticks, fw, action=1, skip=()):
    rng = np.random.default_rng(0)
    for t in range(n_ticks):
        if t in skip:
            continue
        db.put_observation(t, rng.normal(size=fw), reward=float(t))
        db.put_action(t, action)


class TestReplayCache:
    def test_put_get_roundtrip(self):
        c = ReplayCache(frame_width=3, capacity=10)
        rec = TickRecord(tick=5, frame=np.array([1.0, 2.0, 3.0]), action=2, reward=0.5)
        c.put(rec)
        got = c.get(5)
        np.testing.assert_array_equal(got.frame, rec.frame)
        assert got.action == 2 and got.reward == 0.5

    def test_has_and_missing(self):
        c = ReplayCache(3, capacity=10)
        assert not c.has(0)
        c.put(TickRecord(0, np.zeros(3)))
        assert c.has(0) and not c.has(1)

    def test_eviction_by_ring(self):
        c = ReplayCache(2, capacity=4)
        for t in range(10):
            c.put(TickRecord(t, np.full(2, float(t))))
        assert not c.has(5)
        assert c.has(6) and c.has(9)
        assert c.min_tick == 6 and c.max_tick == 9

    def test_too_old_tick_rejected(self):
        c = ReplayCache(2, capacity=4)
        c.put(TickRecord(10, np.zeros(2)))
        with pytest.raises(ValueError):
            c.put(TickRecord(3, np.zeros(2)))

    def test_set_action_reward(self):
        c = ReplayCache(2, capacity=4)
        c.put(TickRecord(0, np.zeros(2)))
        c.set_action(0, 3)
        c.set_reward(0, 1.5)
        got = c.get(0)
        assert got.action == 3 and got.reward == 1.5

    def test_set_on_missing_tick_raises(self):
        c = ReplayCache(2, capacity=4)
        with pytest.raises(KeyError):
            c.set_action(0, 1)

    def test_window_reports_validity(self):
        c = ReplayCache(2, capacity=16)
        for t in (0, 1, 3):
            c.put(TickRecord(t, np.full(2, float(t))))
        frames, valid = c.window(0, 4)
        assert valid.tolist() == [True, True, False, True]
        np.testing.assert_array_equal(frames[3], [3.0, 3.0])
        np.testing.assert_array_equal(frames[2], [0.0, 0.0])

    def test_frame_shape_checked(self):
        c = ReplayCache(3, capacity=4)
        with pytest.raises(ValueError):
            c.put(TickRecord(0, np.zeros(2)))

    def test_nbytes_positive(self):
        assert ReplayCache(4, capacity=8).nbytes() > 0


class TestReplayDB:
    def test_persistence_roundtrip(self, tmp_path):
        path = str(tmp_path / "replay.sqlite")
        db = ReplayDB(4, path=path)
        fill_db(db, 20, 4)
        db.close()

        db2 = ReplayDB(4, path=path)
        assert db2.record_count() == 20
        assert len(db2.cache) == 20
        rec = db2.cache.get(7)
        assert rec.action == 1 and rec.reward == 7.0
        db2.close()

    def test_wrong_width_on_reload_rejected(self, tmp_path):
        path = str(tmp_path / "replay.sqlite")
        db = ReplayDB(4, path=path)
        fill_db(db, 3, 4)
        db.close()
        with pytest.raises(ValueError):
            ReplayDB(5, path=path)

    def test_set_reward_updates_both_layers(self):
        db = ReplayDB(2)
        db.put_observation(0, np.zeros(2))
        db.set_reward(0, 9.0)
        assert db.cache.get(0).reward == 9.0

    def test_sizes_reported(self):
        db = ReplayDB(4)
        fill_db(db, 10, 4)
        assert db.record_count() == 10
        assert db.on_disk_bytes() > 0
        assert db.in_memory_bytes() > 0

    def test_context_manager(self, tmp_path):
        with ReplayDB(2, path=str(tmp_path / "x.sqlite")) as db:
            db.put_observation(0, np.zeros(2))
        # closed without error


class TestSampler:
    def make(self, n_ticks=60, fw=3, obs_ticks=5, skip=(), tol=0.2):
        db = ReplayDB(fw)
        fill_db(db, n_ticks, fw, skip=skip)
        return MinibatchSampler(
            db.cache, obs_ticks=obs_ticks, missing_tolerance=tol, seed=0
        )

    def test_observation_shape(self):
        s = self.make()
        obs = s.observation_at(10)
        assert obs.shape == (5 * 3,)
        assert s.obs_dim == 15

    def test_observation_too_early_is_none(self):
        s = self.make(obs_ticks=5)
        assert s.observation_at(3) is None

    def test_minibatch_shapes(self):
        s = self.make()
        mb = s.sample_minibatch(8)
        assert len(mb) == 8
        assert mb.s_t.shape == (8, 15)
        assert mb.s_next.shape == (8, 15)
        assert mb.actions.shape == (8,)
        assert mb.rewards.shape == (8,)

    def test_reward_is_next_tick_objective(self):
        s = self.make()
        tr = s.transition_at(10)
        assert tr is not None
        # fill_db stores reward == tick, so r_t must equal t+1.
        assert tr.reward == 11.0

    def test_transition_requires_action(self):
        db = ReplayDB(2)
        for t in range(20):
            db.put_observation(t, np.zeros(2))
        # no actions recorded at all
        s = MinibatchSampler(db.cache, obs_ticks=3, seed=0)
        assert s.transition_at(10) is None
        with pytest.raises(SamplerStarvedError):
            s.sample_minibatch(4, max_attempts=5)

    def test_empty_db_starves(self):
        db = ReplayDB(2)
        s = MinibatchSampler(db.cache, obs_ticks=3)
        with pytest.raises(SamplerStarvedError):
            s.sample_minibatch(1)

    def test_missing_within_tolerance_accepted(self):
        # 1 missing of 5 ticks = 20%, equal to tolerance -> accepted
        s = self.make(skip=(8,), obs_ticks=5, tol=0.2)
        assert s.observation_at(10) is not None

    def test_missing_beyond_tolerance_rejected(self):
        s = self.make(skip=(7, 8), obs_ticks=5, tol=0.2)
        assert s.observation_at(10) is None

    def test_imputation_carries_forward(self):
        s = self.make(skip=(8,), obs_ticks=5, tol=0.2)
        obs = s.observation_at(10).reshape(5, 3)
        # window ticks 6..10; index 2 (tick 8) imputed from tick 7
        np.testing.assert_array_equal(obs[2], obs[1])

    def test_eligible_range(self):
        s = self.make(n_ticks=30, obs_ticks=5)
        first, last = s.eligible_range()
        assert first == 4
        assert last == 28  # t+1 must exist

    @settings(max_examples=15, deadline=None)
    @given(n=st.integers(min_value=1, max_value=16))
    def test_minibatch_always_exact_size(self, n):
        s = self.make(n_ticks=40)
        assert len(s.sample_minibatch(n)) == n

    def test_samples_are_uniformish(self):
        """All eligible ticks should be hit over many draws."""
        s = self.make(n_ticks=30, obs_ticks=5)
        seen = set()
        for _ in range(60):
            mb = s.sample_minibatch(8)
            # track via reward == t+1
            seen.update(int(r - 1) for r in mb.rewards)
        first, last = s.eligible_range()
        assert len(seen) >= (last - first + 1) * 0.8
