"""Tests for the replay database: cache, SQLite store, Algorithm 1."""

import sqlite3

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.replaydb import (
    CACHE_ONLY,
    MinibatchSampler,
    PackedRecords,
    ReplayCache,
    ReplayDB,
    TickRecord,
)
from repro.replaydb.sampler import SamplerStarvedError


def fill_db(db, n_ticks, fw, action=1, skip=()):
    rng = np.random.default_rng(0)
    for t in range(n_ticks):
        if t in skip:
            continue
        db.put_observation(t, rng.normal(size=fw), reward=float(t))
        db.put_action(t, action)


class TestReplayCache:
    def test_put_get_roundtrip(self):
        c = ReplayCache(frame_width=3, capacity=10)
        rec = TickRecord(tick=5, frame=np.array([1.0, 2.0, 3.0]), action=2, reward=0.5)
        c.put(rec)
        got = c.get(5)
        np.testing.assert_array_equal(got.frame, rec.frame)
        assert got.action == 2 and got.reward == 0.5

    def test_has_and_missing(self):
        c = ReplayCache(3, capacity=10)
        assert not c.has(0)
        c.put(TickRecord(0, np.zeros(3)))
        assert c.has(0) and not c.has(1)

    def test_eviction_by_ring(self):
        c = ReplayCache(2, capacity=4)
        for t in range(10):
            c.put(TickRecord(t, np.full(2, float(t))))
        assert not c.has(5)
        assert c.has(6) and c.has(9)
        assert c.min_tick == 6 and c.max_tick == 9

    def test_too_old_tick_rejected(self):
        c = ReplayCache(2, capacity=4)
        c.put(TickRecord(10, np.zeros(2)))
        with pytest.raises(ValueError):
            c.put(TickRecord(3, np.zeros(2)))

    def test_set_action_reward(self):
        c = ReplayCache(2, capacity=4)
        c.put(TickRecord(0, np.zeros(2)))
        c.set_action(0, 3)
        c.set_reward(0, 1.5)
        got = c.get(0)
        assert got.action == 3 and got.reward == 1.5

    def test_set_on_missing_tick_raises(self):
        c = ReplayCache(2, capacity=4)
        with pytest.raises(KeyError):
            c.set_action(0, 1)

    def test_window_reports_validity(self):
        c = ReplayCache(2, capacity=16)
        for t in (0, 1, 3):
            c.put(TickRecord(t, np.full(2, float(t))))
        frames, valid = c.window(0, 4)
        assert valid.tolist() == [True, True, False, True]
        np.testing.assert_array_equal(frames[3], [3.0, 3.0])
        np.testing.assert_array_equal(frames[2], [0.0, 0.0])

    def test_frame_shape_checked(self):
        c = ReplayCache(3, capacity=4)
        with pytest.raises(ValueError):
            c.put(TickRecord(0, np.zeros(2)))

    def test_nbytes_positive(self):
        assert ReplayCache(4, capacity=8).nbytes() > 0

    def test_clear_empties_in_place(self):
        c = ReplayCache(2, capacity=8)
        for t in range(5):
            c.put(TickRecord(t, np.full(2, float(t)), action=1))
        c.clear()
        assert len(c) == 0
        assert c.min_tick is None and c.max_tick is None
        assert not c.has(0)
        # Reusable after the fence, including ticks below the old max.
        c.put(TickRecord(1, np.ones(2)))
        assert c.has(1) and len(c) == 1


def _random_batch(k, fw, seed=0, start_tick=0, action_every=2):
    """Ascending ticks with gaps; every ``action_every``-th has an action."""
    rng = np.random.default_rng(seed)
    ticks = start_tick + np.cumsum(rng.integers(1, 3, size=k))
    frames = rng.normal(size=(k, fw))
    actions = np.where(np.arange(k) % action_every == 0, 3, -1)
    rewards = rng.normal(size=k)
    return ticks.astype(np.int64), frames, actions.astype(np.int64), rewards


class TestBulkWrites:
    """put_many / records_between: byte-equivalent to per-record loops."""

    def test_cache_put_many_equals_put_loop(self):
        ticks, frames, actions, rewards = _random_batch(30, 3)
        bulk = ReplayCache(3, capacity=256)
        bulk.put_many(ticks, frames, rewards, actions)
        loop = ReplayCache(3, capacity=256)
        for i in range(30):
            loop.put(
                TickRecord(int(ticks[i]), frames[i], int(actions[i]), float(rewards[i]))
            )
        assert len(bulk) == len(loop)
        assert bulk.min_tick == loop.min_tick and bulk.max_tick == loop.max_tick
        for t in ticks:
            got_b, got_l = bulk.get(int(t)), loop.get(int(t))
            np.testing.assert_array_equal(got_b.frame, got_l.frame)
            assert got_b.action == got_l.action
            assert got_b.reward == got_l.reward

    def test_cache_put_many_irregular_falls_back(self):
        # Unsorted ticks take the per-record path and still land right.
        c = ReplayCache(2, capacity=16)
        c.put_many(
            np.array([5, 2, 9]),
            np.ones((3, 2)),
            np.array([0.5, 1.5, 2.5]),
            np.array([-1, 1, -1]),
        )
        assert len(c) == 3 and c.get(2).action == 1 and c.get(9).reward == 2.5

    def test_cache_put_many_too_old_rejected(self):
        c = ReplayCache(2, capacity=4)
        c.put(TickRecord(10, np.zeros(2)))
        with pytest.raises(ValueError):
            c.put_many(np.array([3]), np.zeros((1, 2)), np.zeros(1))

    def test_cache_put_many_shape_validation(self):
        c = ReplayCache(3, capacity=8)
        with pytest.raises(ValueError):
            c.put_many(np.array([0]), np.zeros((1, 2)), np.zeros(1))
        with pytest.raises(ValueError):
            c.put_many(
                np.array([0]), np.zeros((1, 3)), np.zeros(1), np.array([-1, 2])
            )

    def test_db_put_many_equals_writer_loop(self, tmp_path):
        ticks, frames, actions, rewards = _random_batch(20, 4, seed=3)
        bulk = ReplayDB(4, path=str(tmp_path / "bulk.sqlite"))
        bulk.put_many(ticks, frames, rewards, actions)
        loop = ReplayDB(4, path=str(tmp_path / "loop.sqlite"))
        for i in range(20):
            loop.put_observation(int(ticks[i]), frames[i], float(rewards[i]))
            if actions[i] >= 0:
                loop.put_action(int(ticks[i]), int(actions[i]))
        loop.commit()
        assert bulk.record_count() == loop.record_count() == 20
        for db in (bulk, loop):
            db.close()
        # Reload both from disk: identical durable content.
        re_bulk = ReplayDB(4, path=str(tmp_path / "bulk.sqlite"))
        re_loop = ReplayDB(4, path=str(tmp_path / "loop.sqlite"))
        for t in ticks:
            got_b, got_l = re_bulk.cache.get(int(t)), re_loop.cache.get(int(t))
            np.testing.assert_array_equal(got_b.frame, got_l.frame)
            assert got_b.action == got_l.action
            assert got_b.reward == got_l.reward
        re_bulk.close()
        re_loop.close()

    def test_put_many_commits_at_chunk_boundary(self, tmp_path):
        """Regression: the per-record writers never commit, so a crash
        lost the whole store; put_many must be durable on return."""
        path = str(tmp_path / "durable.sqlite")
        db = ReplayDB(2, path=path)
        ticks, frames, actions, rewards = _random_batch(6, 2, seed=1)
        db.put_many(ticks, frames, rewards, actions)
        # Read through an independent connection while the writer is
        # still open — only committed rows are visible to it.
        other = sqlite3.connect(path)
        (n,) = other.execute("SELECT COUNT(*) FROM observations").fetchone()
        other.close()
        assert n == 6
        db.close()

    def test_put_many_empty_batch_is_noop(self):
        db = ReplayDB(2, path=CACHE_ONLY)
        db.put_many(np.empty(0, dtype=np.int64), np.empty((0, 2)), np.empty(0))
        assert len(db) == 0


class TestCacheOnlyMode:
    def test_cache_only_has_no_sqlite_layer(self):
        db = ReplayDB(3, path=CACHE_ONLY)
        assert db.path is None
        fill_db(db, 12, 3)
        assert len(db) == 12
        assert db.record_count() == 12  # reports cache occupancy
        assert db.on_disk_bytes() == 0
        assert db.in_memory_bytes() > 0
        db.set_reward(3, 9.0)
        assert db.cache.get(3).reward == 9.0
        db.commit()  # no-ops, never raises
        db.close()

    def test_none_path_means_cache_only_too(self):
        db = ReplayDB(2, path=None)
        db.put_observation(0, np.zeros(2))
        assert db.path is None and db.record_count() == 1
        db.close()

    def test_cache_only_samples(self):
        db = ReplayDB(3, path=CACHE_ONLY)
        fill_db(db, 40, 3)
        batch = MinibatchSampler(db.cache, obs_ticks=5, seed=0).sample_minibatch(8)
        assert batch.s_t.shape == (8, 15)
        db.close()


class TestPackedRecords:
    def test_round_trip_field_for_field(self):
        recs = [
            TickRecord(2, np.array([1.0, 2.0]), action=1, reward=0.5),
            TickRecord(4, np.array([3.0, 4.0]), action=-1, reward=-1.5),
        ]
        packed = PackedRecords.from_records(recs, 2)
        assert len(packed) == 2
        back = packed.to_records()
        for a, b in zip(recs, back):
            assert a.tick == b.tick and a.action == b.action
            assert a.reward == b.reward
            np.testing.assert_array_equal(a.frame, b.frame)

    def test_records_between_matches_gets(self):
        c = ReplayCache(2, capacity=32)
        for t in (3, 4, 7, 9):
            c.put(TickRecord(t, np.full(2, float(t)), action=t % 2, reward=t * 0.5))
        packed = c.records_between(4, 9)
        assert packed.ticks.tolist() == [4, 7, 9]
        for i, t in enumerate(packed.ticks):
            rec = c.get(int(t))
            np.testing.assert_array_equal(packed.frames[i], rec.frame)
            assert packed.actions[i] == rec.action
            assert packed.rewards[i] == rec.reward

    def test_records_between_empty_ranges(self):
        c = ReplayCache(2, capacity=8)
        assert len(c.records_between(0, 10)) == 0  # empty cache
        c.put(TickRecord(5, np.zeros(2)))
        assert len(c.records_between(6, 10)) == 0  # above max
        assert len(c.records_between(4, 3)) == 0  # inverted


class TestClear:
    def test_db_clear_drops_durable_rows(self, tmp_path):
        path = str(tmp_path / "clear.sqlite")
        db = ReplayDB(2, path=path)
        fill_db(db, 8, 2)
        db.clear()
        assert db.record_count() == 0 and len(db) == 0
        db.put_observation(0, np.zeros(2))
        db.close()
        db2 = ReplayDB(2, path=path)
        assert db2.record_count() == 1
        db2.close()


class TestReplayDB:
    def test_persistence_roundtrip(self, tmp_path):
        path = str(tmp_path / "replay.sqlite")
        db = ReplayDB(4, path=path)
        fill_db(db, 20, 4)
        db.close()

        db2 = ReplayDB(4, path=path)
        assert db2.record_count() == 20
        assert len(db2.cache) == 20
        rec = db2.cache.get(7)
        assert rec.action == 1 and rec.reward == 7.0
        db2.close()

    def test_wrong_width_on_reload_rejected(self, tmp_path):
        path = str(tmp_path / "replay.sqlite")
        db = ReplayDB(4, path=path)
        fill_db(db, 3, 4)
        db.close()
        with pytest.raises(ValueError):
            ReplayDB(5, path=path)

    def test_set_reward_updates_both_layers(self):
        db = ReplayDB(2)
        db.put_observation(0, np.zeros(2))
        db.set_reward(0, 9.0)
        assert db.cache.get(0).reward == 9.0

    def test_sizes_reported(self):
        db = ReplayDB(4)
        fill_db(db, 10, 4)
        assert db.record_count() == 10
        assert db.on_disk_bytes() > 0
        assert db.in_memory_bytes() > 0

    def test_context_manager(self, tmp_path):
        with ReplayDB(2, path=str(tmp_path / "x.sqlite")) as db:
            db.put_observation(0, np.zeros(2))
        # closed without error


class TestSampler:
    def make(self, n_ticks=60, fw=3, obs_ticks=5, skip=(), tol=0.2):
        db = ReplayDB(fw)
        fill_db(db, n_ticks, fw, skip=skip)
        return MinibatchSampler(
            db.cache, obs_ticks=obs_ticks, missing_tolerance=tol, seed=0
        )

    def test_observation_shape(self):
        s = self.make()
        obs = s.observation_at(10)
        assert obs.shape == (5 * 3,)
        assert s.obs_dim == 15

    def test_observation_too_early_is_none(self):
        s = self.make(obs_ticks=5)
        assert s.observation_at(3) is None

    def test_minibatch_shapes(self):
        s = self.make()
        mb = s.sample_minibatch(8)
        assert len(mb) == 8
        assert mb.s_t.shape == (8, 15)
        assert mb.s_next.shape == (8, 15)
        assert mb.actions.shape == (8,)
        assert mb.rewards.shape == (8,)

    def test_reward_is_next_tick_objective(self):
        s = self.make()
        tr = s.transition_at(10)
        assert tr is not None
        # fill_db stores reward == tick, so r_t must equal t+1.
        assert tr.reward == 11.0

    def test_transition_requires_action(self):
        db = ReplayDB(2)
        for t in range(20):
            db.put_observation(t, np.zeros(2))
        # no actions recorded at all
        s = MinibatchSampler(db.cache, obs_ticks=3, seed=0)
        assert s.transition_at(10) is None
        with pytest.raises(SamplerStarvedError):
            s.sample_minibatch(4, max_attempts=5)

    def test_empty_db_starves(self):
        db = ReplayDB(2)
        s = MinibatchSampler(db.cache, obs_ticks=3)
        with pytest.raises(SamplerStarvedError):
            s.sample_minibatch(1)

    def test_missing_within_tolerance_accepted(self):
        # 1 missing of 5 ticks = 20%, equal to tolerance -> accepted
        s = self.make(skip=(8,), obs_ticks=5, tol=0.2)
        assert s.observation_at(10) is not None

    def test_missing_beyond_tolerance_rejected(self):
        s = self.make(skip=(7, 8), obs_ticks=5, tol=0.2)
        assert s.observation_at(10) is None

    def test_imputation_carries_forward(self):
        s = self.make(skip=(8,), obs_ticks=5, tol=0.2)
        obs = s.observation_at(10).reshape(5, 3)
        # window ticks 6..10; index 2 (tick 8) imputed from tick 7
        np.testing.assert_array_equal(obs[2], obs[1])

    def test_eligible_range(self):
        s = self.make(n_ticks=30, obs_ticks=5)
        first, last = s.eligible_range()
        assert first == 4
        assert last == 28  # t+1 must exist

    @settings(max_examples=15, deadline=None)
    @given(n=st.integers(min_value=1, max_value=16))
    def test_minibatch_always_exact_size(self, n):
        s = self.make(n_ticks=40)
        assert len(s.sample_minibatch(n)) == n

    def test_samples_are_uniformish(self):
        """All eligible ticks should be hit over many draws."""
        s = self.make(n_ticks=30, obs_ticks=5)
        seen = set()
        for _ in range(60):
            mb = s.sample_minibatch(8)
            # track via reward == t+1
            seen.update(int(r - 1) for r in mb.rewards)
        first, last = s.eligible_range()
        assert len(seen) >= (last - first + 1) * 0.8
